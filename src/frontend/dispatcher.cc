#include "frontend/dispatcher.h"

#include <utility>

#include "api/error.h"
#include "common/check.h"
#include "common/table_printer.h"

namespace pmw {
namespace frontend {

std::vector<std::string> DispatcherStats::TableHeader() {
  return {"submitted", "admitted",  "quota_rej", "shutdown_rej", "deadline",
          "batches",   "fill_mean", "qwait_us",  "serve_us"};
}

std::vector<std::string> DispatcherStats::TableRow() const {
  return {TablePrinter::FmtInt(submitted),
          TablePrinter::FmtInt(admitted),
          TablePrinter::FmtInt(quota_rejected),
          TablePrinter::FmtInt(shutdown_rejected),
          TablePrinter::FmtInt(deadline_expired),
          TablePrinter::FmtInt(batches),
          TablePrinter::Fmt(batch_fill.mean(), 2),
          TablePrinter::Fmt(queue_wait_us.mean(), 1),
          TablePrinter::Fmt(serve_us.mean(), 1)};
}

std::string DispatcherStats::ToString() const {
  TablePrinter table(TableHeader());
  table.AddRow(TableRow());
  return table.ToString();
}

Dispatcher::Dispatcher(serve::PmwService* service, QuotaManager* quota,
                       PlanCache* plan_cache,
                       const DispatcherOptions& options)
    : service_(service),
      quota_(quota),
      plan_cache_(plan_cache),
      options_(options),
      queue_(options.queue_capacity) {
  PMW_CHECK(service != nullptr);
  PMW_CHECK_GE(options.max_batch, size_t{1});
  if (plan_cache_ != nullptr) service_->set_plan_cache(plan_cache_);
  // Frontend instruments live in the service's registry so one scrape
  // covers the whole stack; handles resolved once, here.
  obs::Registry& registry = service_->registry();
  m_.submitted = registry.GetCounter("pmw_frontend_submitted_total");
  m_.admitted = registry.GetCounter("pmw_frontend_admitted_total");
  m_.quota_rejected =
      registry.GetCounter("pmw_frontend_quota_rejected_total");
  m_.shutdown_rejected =
      registry.GetCounter("pmw_frontend_shutdown_rejected_total");
  m_.deadline_expired =
      registry.GetCounter("pmw_frontend_deadline_expired_total");
  m_.batches = registry.GetCounter("pmw_frontend_batches_total");
  m_.plan_evicted = registry.GetCounter("pmw_frontend_plan_evicted_total");
  m_.plan_admission_rejected =
      registry.GetCounter("pmw_frontend_plan_admission_rejected_total");
  m_.plan_stale_dropped =
      registry.GetCounter("pmw_frontend_plan_stale_dropped_total");
  m_.batch_fill = registry.GetHistogram(
      "pmw_frontend_batch_fill", obs::Histogram::LogBuckets(1.0, 2.0, 12));
  // 1us .. ~8.4s in x2 steps: queue waits and batch serve times.
  m_.queue_wait_us = registry.GetHistogram(
      "pmw_frontend_queue_wait_us", obs::Histogram::LogBuckets(1.0, 2.0, 24));
  m_.serve_us = registry.GetHistogram(
      "pmw_frontend_serve_us", obs::Histogram::LogBuckets(1.0, 2.0, 24));
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

Dispatcher::~Dispatcher() { Shutdown(); }

std::future<Served> Dispatcher::Submit(
    const std::string& analyst_id, const convex::CmQuery& query,
    uint64_t* request_id, std::chrono::steady_clock::time_point deadline) {
  Request request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.analyst_id = analyst_id;
  request.query = query;
  request.deadline = deadline;
  std::future<Served> future = request.promise.get_future();
  if (request_id != nullptr) *request_id = request.id;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submitted;
  }
  m_.submitted->Add(1);

  if (shutdown_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.shutdown_rejected;
    m_.shutdown_rejected->Add(1);
    request.promise.set_value(Served(api::MakeStatus(
        api::ErrorCode::kShutdown, "frontend: dispatcher is shut down")));
    return future;
  }

  // Admission control before the queue: a rejected request never reaches
  // the mechanism, so it cannot consume privacy budget or a query slot.
  if (quota_ != nullptr) {
    Status admit = quota_->Admit(analyst_id);
    if (!admit.ok()) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.quota_rejected;
      }
      m_.quota_rejected->Add(1);
      request.promise.set_value(Served(std::move(admit)));
      return future;
    }
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.admitted;
  }
  request.enqueued_at = std::chrono::steady_clock::now();
  // Push moves from `request` only on success, so a close raced between
  // the shutdown check above and here still leaves us the promise to
  // resolve with the typed error — and the quota slot to hand back (the
  // mechanism never saw the query, so the analyst must not stay charged).
  if (!queue_.Push(request)) {
    if (quota_ != nullptr) quota_->Refund(analyst_id);
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      --stats_.admitted;
      ++stats_.shutdown_rejected;
    }
    m_.shutdown_rejected->Add(1);
    request.promise.set_value(Served(api::MakeStatus(
        api::ErrorCode::kShutdown, "frontend: dispatcher is shut down")));
  } else {
    // Counters are monotonic: admitted is recorded only once the push
    // actually stuck (the lock-held path above may revert its ++).
    m_.admitted->Add(1);
  }
  return future;
}

void Dispatcher::DispatchLoop() {
  std::vector<Request> batch;
  std::vector<Request> live;
  std::vector<convex::CmQuery> queries;
  std::vector<std::string> tags;
  std::vector<serve::QueryOutcome> outcomes;
  for (;;) {
    batch.clear();
    live.clear();
    queries.clear();
    tags.clear();
    const bool popped =
        options_.fair_round_robin
            ? queue_.PopBatchRoundRobin(
                  &batch, options_.max_batch, options_.max_wait,
                  [](const Request& request) -> const std::string& {
                    return request.analyst_id;
                  })
            : queue_.PopBatch(&batch, options_.max_batch,
                              options_.max_wait);
    if (!popped) {
      return;  // closed and drained
    }
    // Deadline sweep at the last instant before serving: a request whose
    // deadline passed while queued resolves with kDeadlineExpired and is
    // dropped from the batch — the mechanism never sees it, so expiry is
    // free (no ledger event, no k-query slot) and the quota slot goes
    // back to the analyst.
    //
    // Refund audit: this is one of exactly two Refund sites, and they are
    // mutually exclusive per request. The Submit-side refund fires only
    // when Push fails, in which case the request was never enqueued and
    // can never reach this sweep; a request swept here was popped from
    // the queue, so its Push succeeded and the Submit-side refund did not
    // fire. Each admitted request therefore refunds at most once, and
    // QuotaManager::Refund saturating at zero is a backstop, not a mask
    // for double refunds (frontend_test pins the exact counts).
    const auto now = std::chrono::steady_clock::now();
    std::vector<Request> expired;
    for (Request& request : batch) {
      if (request.deadline != std::chrono::steady_clock::time_point{} &&
          request.deadline < now) {
        if (quota_ != nullptr) quota_->Refund(request.analyst_id);
        expired.push_back(std::move(request));
      } else {
        live.push_back(std::move(request));
      }
    }
    if (!expired.empty()) {
      {
        // Count before resolving, so an awoken waiter always observes
        // its own expiry in stats().
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.deadline_expired += static_cast<long long>(expired.size());
      }
      m_.deadline_expired->Add(static_cast<long long>(expired.size()));
      for (Request& request : expired) {
        Served served(api::MakeStatus(
            api::ErrorCode::kDeadlineExpired,
            "frontend: deadline expired after " +
                std::to_string(
                    std::chrono::duration_cast<std::chrono::microseconds>(
                        now - request.deadline)
                        .count()) +
                "us in queue"));
        served.queue_wait_us = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                now - request.enqueued_at)
                .count());
        request.promise.set_value(std::move(served));
      }
    }
    if (live.empty()) continue;
    for (const Request& request : live) {
      queries.push_back(request.query);
      tags.push_back(request.analyst_id);
    }
    // The latency split: `now` marks batch formation, so everything
    // before it is queue wait and the AnswerBatch wall time below is
    // serve time (shared by every request the batch carries).
    std::vector<uint64_t> queue_waits_us;
    queue_waits_us.reserve(live.size());
    for (const Request& request : live) {
      queue_waits_us.push_back(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              now - request.enqueued_at)
              .count()));
    }
    // The single-writer serving call. Arrival order == queue FIFO order
    // == the order results are committed and promises resolved below.
    const auto serve_start = std::chrono::steady_clock::now();
    std::vector<Result<convex::Vec>> results =
        service_->AnswerBatch(queries, tags, &outcomes);
    const uint64_t batch_serve_us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - serve_start)
            .count());
    PMW_CHECK_EQ(results.size(), live.size());
    PMW_CHECK_EQ(outcomes.size(), live.size());
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.batches;
      stats_.batch_fill.Add(static_cast<double>(live.size()));
      for (uint64_t wait_us : queue_waits_us) {
        stats_.queue_wait_us.Add(static_cast<double>(wait_us));
        stats_.serve_us.Add(static_cast<double>(batch_serve_us));
      }
      if (options_.record_arrival_log) {
        for (const Request& request : live) {
          arrival_log_.push_back(request.id);
        }
      }
    }
    m_.batches->Add(1);
    PublishPlanCacheMetrics();
    m_.batch_fill->Observe(static_cast<double>(live.size()));
    for (uint64_t wait_us : queue_waits_us) {
      m_.queue_wait_us->Observe(static_cast<double>(wait_us));
      m_.serve_us->Observe(static_cast<double>(batch_serve_us));
    }
    for (size_t j = 0; j < live.size(); ++j) {
      Served served(std::move(results[j]), outcomes[j]);
      served.queue_wait_us = queue_waits_us[j];
      served.serve_us = batch_serve_us;
      const bool answered_ok = served.answer.ok();
      live[j].promise.set_value(std::move(served));
      // The span tree is assembled and published AFTER the promise
      // resolves: a waiting client never pays for tracing, and the
      // recorder's per-slot lock is the only synchronization touched.
      if (options_.trace_recorder != nullptr) {
        const serve::QueryOutcome& outcome = outcomes[j];
        obs::RequestTrace trace;
        trace.trace_id = live[j].id;
        trace.analyst = live[j].analyst_id;
        trace.query = live[j].query.label;
        trace.total_us = queue_waits_us[j] + batch_serve_us;
        trace.hard_round = outcome.hard_round;
        trace.ok = answered_ok;
        const uint64_t commit_start =
            queue_waits_us[j] + outcome.prepare_us;
        trace.spans.push_back({"queue", 0, queue_waits_us[j], -1});
        trace.spans.push_back(
            {"prepare", queue_waits_us[j], outcome.prepare_us, -1});
        trace.spans.push_back(
            {"commit", commit_start, outcome.commit_us, -1});
        if (outcome.solve_us > 0) {
          trace.spans.push_back(
              {"solve", commit_start, outcome.solve_us, -1});
        }
        if (outcome.mw_us > 0) {
          trace.spans.push_back({"mw", commit_start + outcome.solve_us,
                                 outcome.mw_us, -1});
        }
        for (size_t s = 0; s < outcome.shard_us.size(); ++s) {
          trace.spans.push_back({"shard_mw",
                                 commit_start + outcome.solve_us,
                                 outcome.shard_us[s],
                                 static_cast<int>(s)});
        }
        options_.trace_recorder->Publish(std::move(trace));
      }
    }
  }
}

void Dispatcher::PublishPlanCacheMetrics() {
  if (plan_cache_ == nullptr) return;
  const serve::PlanCacheCounters totals = plan_cache_->Counters();
  m_.plan_evicted->Add(totals.evicted - published_plan_counters_.evicted);
  m_.plan_admission_rejected->Add(totals.admission_rejected -
                                  published_plan_counters_.admission_rejected);
  m_.plan_stale_dropped->Add(totals.stale_dropped -
                             published_plan_counters_.stale_dropped);
  published_plan_counters_ = totals;
}

void Dispatcher::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  shutdown_.store(true, std::memory_order_release);
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Final flush after the join: the loop may have exited between serving
  // a batch and the cache's last mutation being published.
  PublishPlanCacheMetrics();
  if (plan_cache_ != nullptr && service_->plan_cache() == plan_cache_) {
    service_->set_plan_cache(nullptr);
  }
}

std::vector<uint64_t> Dispatcher::ArrivalLog() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return arrival_log_;
}

DispatcherStats Dispatcher::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

AnalystSession::AnalystSession(Dispatcher* dispatcher, std::string analyst_id)
    : dispatcher_(dispatcher), analyst_id_(std::move(analyst_id)) {
  PMW_CHECK(dispatcher != nullptr);
}

std::future<Served> AnalystSession::Submit(
    const convex::CmQuery& query, uint64_t* request_id,
    std::chrono::steady_clock::time_point deadline) {
  return dispatcher_->Submit(analyst_id_, query, request_id, deadline);
}

}  // namespace frontend
}  // namespace pmw
