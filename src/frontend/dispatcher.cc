#include "frontend/dispatcher.h"

#include <utility>

#include "common/check.h"

namespace pmw {
namespace frontend {

Dispatcher::Dispatcher(serve::PmwService* service, QuotaManager* quota,
                       PlanCache* plan_cache,
                       const DispatcherOptions& options)
    : service_(service),
      quota_(quota),
      plan_cache_(plan_cache),
      options_(options),
      queue_(options.queue_capacity) {
  PMW_CHECK(service != nullptr);
  PMW_CHECK_GE(options.max_batch, size_t{1});
  if (plan_cache_ != nullptr) service_->set_plan_cache(plan_cache_);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

Dispatcher::~Dispatcher() { Shutdown(); }

std::future<Result<convex::Vec>> Dispatcher::Submit(
    const std::string& analyst_id, const convex::CmQuery& query,
    uint64_t* request_id) {
  Request request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.analyst_id = analyst_id;
  request.query = query;
  std::future<Result<convex::Vec>> future = request.promise.get_future();
  if (request_id != nullptr) *request_id = request.id;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submitted;
  }

  if (shutdown_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.shutdown_rejected;
    request.promise.set_value(
        Status::FailedPrecondition("frontend: dispatcher is shut down"));
    return future;
  }

  // Admission control before the queue: a rejected request never reaches
  // the mechanism, so it cannot consume privacy budget or a query slot.
  if (quota_ != nullptr) {
    Status admit = quota_->Admit(analyst_id);
    if (!admit.ok()) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.quota_rejected;
      }
      request.promise.set_value(std::move(admit));
      return future;
    }
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.admitted;
  }
  // Push moves from `request` only on success, so a close raced between
  // the shutdown check above and here still leaves us the promise to
  // resolve with the typed error — and the quota slot to hand back (the
  // mechanism never saw the query, so the analyst must not stay charged).
  if (!queue_.Push(request)) {
    if (quota_ != nullptr) quota_->Refund(analyst_id);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    --stats_.admitted;
    ++stats_.shutdown_rejected;
    request.promise.set_value(
        Status::FailedPrecondition("frontend: dispatcher is shut down"));
  }
  return future;
}

void Dispatcher::DispatchLoop() {
  std::vector<Request> batch;
  std::vector<convex::CmQuery> queries;
  std::vector<std::string> tags;
  for (;;) {
    batch.clear();
    queries.clear();
    tags.clear();
    if (!queue_.PopBatch(&batch, options_.max_batch, options_.max_wait)) {
      return;  // closed and drained
    }
    for (const Request& request : batch) {
      queries.push_back(request.query);
      tags.push_back(request.analyst_id);
    }
    // The single-writer serving call. Arrival order == queue FIFO order
    // == the order results are committed and promises resolved below.
    std::vector<Result<convex::Vec>> results =
        service_->AnswerBatch(queries, tags);
    PMW_CHECK_EQ(results.size(), batch.size());
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.batches;
      stats_.batch_fill.Add(static_cast<double>(batch.size()));
      if (options_.record_arrival_log) {
        for (const Request& request : batch) {
          arrival_log_.push_back(request.id);
        }
      }
    }
    for (size_t j = 0; j < batch.size(); ++j) {
      batch[j].promise.set_value(std::move(results[j]));
    }
  }
}

void Dispatcher::Shutdown() {
  std::lock_guard<std::mutex> lock(shutdown_mutex_);
  shutdown_.store(true, std::memory_order_release);
  queue_.Close();
  if (dispatcher_.joinable()) dispatcher_.join();
  if (plan_cache_ != nullptr && service_->plan_cache() == plan_cache_) {
    service_->set_plan_cache(nullptr);
  }
}

std::vector<uint64_t> Dispatcher::ArrivalLog() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return arrival_log_;
}

DispatcherStats Dispatcher::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

AnalystSession::AnalystSession(Dispatcher* dispatcher, std::string analyst_id)
    : dispatcher_(dispatcher), analyst_id_(std::move(analyst_id)) {
  PMW_CHECK(dispatcher != nullptr);
}

std::future<Result<convex::Vec>> AnalystSession::Submit(
    const convex::CmQuery& query, uint64_t* request_id) {
  return dispatcher_->Submit(analyst_id_, query, request_id);
}

}  // namespace frontend
}  // namespace pmw
