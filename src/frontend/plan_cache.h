// Content-fingerprint-keyed cross-epoch plan cache with CLOCK eviction
// (serve::PlanCacheHook implementation).
//
// PR 1/2 deduplicated repeated queries *within* one prepared range; the
// first cross-batch cache extended that across the stream but keyed on
// the raw hypothesis version and invalidated wholesale at every version
// change — every hard round re-ran the full cold-plan convoy. This
// rewrite keys entries on the epoch's *per-shard content fingerprints*
// (folded into serve::PlanStamp::content) instead:
//
//   correctness  A plan is served only when the probing epoch's
//                (shard_set, content) exactly equal the stamp it was
//                computed under. Prepare is a pure function of
//                (query, support bytes) — equal fingerprints mean the
//                recompute would be byte-identical — so a hit cannot
//                change the transcript. The one field Prepare takes from
//                the version rather than the bytes, the plan's
//                hypothesis_version stamp, is rewritten to the probing
//                stamp's version on every hit (the hook contract's
//                "content-hit restamp"), after which plan and recompute
//                agree byte for byte.
//
//   reuse        Soft rounds republish identical content under new
//                sequence numbers — hits, as before. Epochs whose
//                version moved but whose content round-tripped (or whose
//                fingerprints were copied forward by the epoch reuse
//                path) now ALSO hit, so nothing is thrown away that is
//                still byte-valid. Entries that went stale (content
//                moved on; the hypothesis never revisits old content)
//                are dropped lazily when probed.
//
// Replacement is a sized CLOCK ring with second-chance eviction and a
// frequency-sketch admission filter (TinyLFU-style):
//
//        hand ->  [ slot | ref=1 ]   ref set on every hit
//                 [ slot | ref=0 ]   <- second chance expired: victim
//                 [ slot | ref=1 ]
//                    ...ring...
//
// A full ring admits a newcomer only if its estimated access frequency
// (4-row count-min sketch over query keys, periodically halved so stale
// popularity ages out) is at least the victim's — one-shot scans cannot
// wash a hot working set out of the ring. Stats distinguish the three
// ways an entry can die: CLOCK eviction, admission rejection (the
// newcomer dies instead), and fingerprint-staleness drops.
//
// Lifetime contract: keys are the loss/domain pointer fingerprints of
// serve::QueryKey, so the cache *extends* the repo's pointer-identity
// convention ("families own the losses and keep them alive") from one
// batch to the cache's whole lifetime. The query families feeding a
// dispatcher must therefore outlive the cache. Every current caller (one
// family per serving session) satisfies this by construction; if query
// churn ever becomes a workload, key by content fingerprint instead.
//
// Threading: the serving writer is the only caller of
// Lookup/Insert/OnEpochPublish (serve::PlanCacheHook's contract); the
// internal mutex exists so stats scrapers and tests may read counters
// concurrently, not to enable concurrent mutation.

#ifndef PMWCM_FRONTEND_PLAN_CACHE_H_
#define PMWCM_FRONTEND_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/pmw_cm.h"
#include "serve/shard_executor.h"

namespace pmw {
namespace frontend {

class PlanCache : public serve::PlanCacheHook {
 public:
  struct Stats {
    long long hits = 0;
    long long misses = 0;
    long long insertions = 0;
    /// Entries evicted by the CLOCK hand (second chance expired, victim
    /// lost the admission duel).
    long long evicted = 0;
    /// Newcomers the frequency sketch refused to admit over a resident
    /// victim (the newcomer was dropped, the ring unchanged).
    long long admission_rejected = 0;
    /// Entries dropped because their content fingerprints no longer
    /// matched the probing epoch (permanently stale).
    long long stale_dropped = 0;

    double HitRate() const {
      long long lookups = hits + misses;
      return lookups > 0
                 ? static_cast<double>(hits) / static_cast<double>(lookups)
                 : 0.0;
    }
  };

  /// Caps resident plans at `max_entries` (>= 1) in a fixed CLOCK ring.
  explicit PlanCache(size_t max_entries = 4096);

  bool Lookup(const serve::QueryKey& key, const serve::PlanStamp& stamp,
              core::PreparedQuery* plan) override;
  void Insert(const serve::QueryKey& key, const serve::PlanStamp& stamp,
              const core::PreparedQuery& plan) override;
  void OnEpochPublish(const serve::PlanStamp& stamp) override;
  serve::PlanCacheCounters Counters() const override;

  Stats stats() const;
  size_t size() const;
  /// The most recently published stamp (version -1 / zeros before the
  /// first epoch publish).
  serve::PlanStamp current_stamp() const;

 private:
  struct Slot {
    bool occupied = false;
    bool referenced = false;
    serve::QueryKey key{nullptr, nullptr};
    uint64_t shard_set = 0;
    uint64_t content = 0;
    core::PreparedQuery plan;
  };

  /// 4-row count-min sketch of query-key popularity with periodic
  /// halving; saturating 8-bit counters.
  class FreqSketch {
   public:
    explicit FreqSketch(size_t capacity);
    void Record(uint64_t hash);
    uint32_t Estimate(uint64_t hash) const;

   private:
    size_t Index(uint64_t hash, int row) const;
    std::vector<uint8_t> counters_;
    size_t row_mask_;
    long long recorded_ = 0;
    long long sample_period_;
  };

  static uint64_t KeyHash(const serve::QueryKey& key);
  /// Frees `slot` and unlinks it from the index (caller holds the lock).
  void ReleaseSlot(size_t slot);
  /// CLOCK second-chance scan: returns the victim candidate's slot index.
  size_t FindVictim();

  const size_t max_entries_;
  mutable std::mutex mutex_;
  serve::PlanStamp stamp_{};
  std::vector<Slot> slots_;
  size_t hand_ = 0;
  size_t occupied_ = 0;
  std::unordered_map<serve::QueryKey, size_t, serve::QueryKeyHash> index_;
  FreqSketch sketch_;
  Stats stats_;
};

}  // namespace frontend
}  // namespace pmw

#endif  // PMWCM_FRONTEND_PLAN_CACHE_H_
