// (Epoch, shard-set)-keyed cross-batch plan cache (serve::PlanCacheHook
// implementation). PR 1/2 deduplicated repeated queries *within* one
// prepared range; this cache extends the amortization across the whole
// request stream: a query answered in batch 1 costs no solver work in
// batch 400, as long as the hypothesis has not moved. Entries are keyed
// by (query fingerprint, hypothesis version, shard set); when the
// serving writer publishes an epoch at a new version — or under a new
// shard partition — every cached plan is permanently stale, so the cache
// invalidates wholesale. The correctness argument stays trivial: a plan
// is served only at the exact (version, shard-set) it was computed at,
// where it is byte-identical to a recompute (PmwCm::Prepare is
// deterministic, and sharding never changes the hypothesis bits).
//
// Lifetime contract: keys are the loss/domain pointer fingerprints of
// serve::QueryKey, so the cache *extends* the repo's pointer-identity
// convention ("families own the losses and keep them alive") from one
// batch to the cache's whole lifetime. The query families feeding a
// dispatcher must therefore outlive the cache — destroying a family and
// reusing its allocations while cached plans for it are still resident
// could alias a new query onto an old plan. Every current caller (one
// family per serving session) satisfies this by construction; if query
// churn ever becomes a workload, key by content fingerprint instead.
//
// Threading: the serving writer is the only caller of
// Lookup/Insert/OnEpochPublish (serve::PlanCacheHook's contract); the
// internal mutex exists so stats scrapers and tests may read counters
// concurrently, not to enable concurrent mutation.

#ifndef PMWCM_FRONTEND_PLAN_CACHE_H_
#define PMWCM_FRONTEND_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "core/pmw_cm.h"
#include "serve/shard_executor.h"

namespace pmw {
namespace frontend {

class PlanCache : public serve::PlanCacheHook {
 public:
  struct Stats {
    long long hits = 0;
    long long misses = 0;
    long long insertions = 0;
    /// Entries dropped by epoch invalidation.
    long long invalidated = 0;
    /// Entries dropped to respect max_entries.
    long long evicted = 0;

    double HitRate() const {
      long long lookups = hits + misses;
      return lookups > 0
                 ? static_cast<double>(hits) / static_cast<double>(lookups)
                 : 0.0;
    }
  };

  /// Caps resident plans at `max_entries` (>= 1); overflow evicts an
  /// arbitrary entry (plans are cheap to recompute and die wholesale at
  /// the next epoch anyway, so LRU bookkeeping would buy little).
  explicit PlanCache(size_t max_entries = 4096);

  bool Lookup(const serve::QueryKey& key, int version, uint64_t shard_set,
              core::PreparedQuery* plan) override;
  void Insert(const serve::QueryKey& key,
              const core::PreparedQuery& plan) override;
  void OnEpochPublish(int version, uint64_t shard_set) override;

  Stats stats() const;
  size_t size() const;
  /// The hypothesis version current entries belong to (-1 before the
  /// first epoch publish).
  int version() const;
  /// The shard-set fingerprint current entries belong to (0 before the
  /// first epoch publish).
  uint64_t shard_set() const;

 private:
  const size_t max_entries_;
  mutable std::mutex mutex_;
  int version_ = -1;
  uint64_t shard_set_ = 0;
  std::unordered_map<serve::QueryKey, core::PreparedQuery,
                     serve::QueryKeyHash>
      entries_;
  Stats stats_;
};

}  // namespace frontend
}  // namespace pmw

#endif  // PMWCM_FRONTEND_PLAN_CACHE_H_
