#include "frontend/quota_manager.h"

#include "api/error.h"

namespace pmw {
namespace frontend {

QuotaManager::QuotaManager(const serve::PmwService* service,
                           const QuotaOptions& options)
    : options_(options),
      oracle_view_(&service->mechanism().ledger(), "oracle:",
                   service->mechanism().schedule().T) {}

Status QuotaManager::Admit(const std::string& analyst_id) {
  // Hard-round budget first: once the schedule's T oracle calls are in
  // the ledger the sparse vector is halted and every downstream answer
  // would be kHalted — reject at the door instead, before queue slots or
  // dispatcher time are spent. Read outside our lock: the ledger has its
  // own, and this check is monotone (once exhausted, always exhausted).
  if (oracle_view_.exhausted()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++total_rejected_;
    // kHalted, not kQuotaExceeded: the door is predicting the mechanism's
    // own halt from the ledger, so remote callers see the same code a
    // served query would have produced — just earlier and for free.
    return api::MakeStatus(
        api::ErrorCode::kHalted,
        "quota: hard-round budget exhausted (all " +
            std::to_string(oracle_view_.max_events()) +
            " oracle calls spent)");
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (options_.global_queries > 0 &&
      total_admitted_ >= options_.global_queries) {
    ++total_rejected_;
    return api::MakeStatus(api::ErrorCode::kQuotaExceeded,
                           "quota: global budget of " +
                               std::to_string(options_.global_queries) +
                               " queries exhausted");
  }
  long long& count = admitted_[analyst_id];
  if (options_.per_analyst_queries > 0 &&
      count >= options_.per_analyst_queries) {
    ++total_rejected_;
    return api::MakeStatus(
        api::ErrorCode::kQuotaExceeded,
        "quota: analyst '" + analyst_id + "' exhausted its " +
            std::to_string(options_.per_analyst_queries) + "-query quota");
  }
  ++count;
  ++total_admitted_;
  return Status::Ok();
}

void QuotaManager::Refund(const std::string& analyst_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = admitted_.find(analyst_id);
  if (it == admitted_.end() || it->second <= 0) return;
  --it->second;
  --total_admitted_;
}

long long QuotaManager::admitted(const std::string& analyst_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = admitted_.find(analyst_id);
  return it != admitted_.end() ? it->second : 0;
}

long long QuotaManager::total_admitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_admitted_;
}

long long QuotaManager::total_rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_rejected_;
}

}  // namespace frontend
}  // namespace pmw
