// Admission control for the multi-analyst front-end.
//
// PMW-CM's value proposition is that accuracy degrades with the number
// of *hard* rounds, not the number of analysts — but an individual
// analyst can still burn the shared k-query budget or flood the queue.
// The QuotaManager sits at the front door and rejects work *before* it
// can cost anything: a rejected query never enters the MPSC queue, never
// reaches the mechanism, and therefore never consumes a query slot, a
// sparse-vector threshold test, or a ledger event (tests assert the
// ledger is byte-identical across a rejection).
//
// Two kinds of budget are enforced:
//   * per-analyst / global query quotas, tracked here (admission
//     reserves a slot atomically, so concurrent submitters cannot
//     overshoot), and
//   * the mechanism's hard-round budget, read through a dp::BudgetView
//     over the privacy ledger ("oracle:" events vs the schedule's T) —
//     the ledger's lock makes that view safe from any submitter thread
//     while the serving writer keeps recording, and once T oracle calls
//     are spent the sparse vector is halted, so admitting more work
//     could only ever produce kHalted errors downstream.
//
// Rejections are typed through the api::ErrorCode taxonomy (api/error.h):
// api::ErrorCode::kQuotaExceeded for query-quota exhaustion (legacy
// StatusCode::kResourceExhausted) and api::ErrorCode::kHalted for a spent
// hard-round budget. The canonical "[kCode] " message tag makes the
// classification lossless across the wire.
//
// CONTRACT: every rejection detail this class mints starts with
// "quota: ". For kHalted that prefix is load-bearing, not cosmetic — it
// is how the api layer tells a door-predicted halt (never committed, no
// arrival-log entry) from the mechanism's own halt (a committed
// transcript entry); see NeverCommitted in api/endpoint.cc before
// changing the wording.

#ifndef PMWCM_FRONTEND_QUOTA_MANAGER_H_
#define PMWCM_FRONTEND_QUOTA_MANAGER_H_

#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "dp/ledger.h"
#include "serve/pmw_service.h"

namespace pmw {
namespace frontend {

struct QuotaOptions {
  /// Queries each analyst may have admitted over the session's lifetime;
  /// <= 0 means unlimited.
  long long per_analyst_queries = 0;
  /// Global cap across all analysts; <= 0 means unlimited (the
  /// mechanism's own k-query budget still applies downstream and rejects
  /// overflow with typed errors at zero privacy cost).
  long long global_queries = 0;
};

class QuotaManager {
 public:
  /// `service` must outlive the manager; its mechanism's schedule fixes
  /// the hard-round budget T and its ledger is the consumption record.
  QuotaManager(const serve::PmwService* service, const QuotaOptions& options);

  /// Thread-safe admission check: reserves one slot for `analyst_id` or
  /// returns a typed rejection (see file comment). Called by submitter
  /// threads before a request may enter the queue.
  Status Admit(const std::string& analyst_id);

  /// Returns a slot Admit reserved for a request that was never served
  /// (the dispatcher shut down before it could enqueue) — the analyst
  /// must not stay charged for work the mechanism never saw.
  void Refund(const std::string& analyst_id);

  /// Admitted queries for one analyst (0 for unknown analysts).
  long long admitted(const std::string& analyst_id) const;
  long long total_admitted() const;
  long long total_rejected() const;

  /// Hard rounds (oracle calls / MW updates) left before the sparse
  /// vector halts, per the ledger.
  long long HardRoundsRemaining() const { return oracle_view_.remaining(); }
  /// Privacy the oracle calls have cost so far (basic composition over
  /// the ledger's "oracle:" events).
  dp::PrivacyParams OracleSpent() const { return oracle_view_.Spent(); }

  const QuotaOptions& options() const { return options_; }

 private:
  const QuotaOptions options_;
  dp::BudgetView oracle_view_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, long long> admitted_;
  long long total_admitted_ = 0;
  long long total_rejected_ = 0;
};

}  // namespace frontend
}  // namespace pmw

#endif  // PMWCM_FRONTEND_QUOTA_MANAGER_H_
