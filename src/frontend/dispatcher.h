// INTERNAL — the asynchronous multi-analyst engine behind the public
// pmw::api surface. Since PR 4 the one public serving surface is
// api::Client / api::ServerEndpoint (src/api/); examples and external
// callers must not include this header or call Submit directly (CI's
// examples-smoke job enforces the include rule). Tests and benchmarks
// may, to pin the engine's behavior and measure the api layer's overhead
// against it.
//
//   analysts --Submit--> MpscQueue --PopBatch--> Dispatcher thread
//        --AnswerBatch--> serve::PmwService --> futures resolve
//
// Many analyst threads call Submit concurrently; each admitted request
// enters a bounded MPSC queue (common/mpsc_queue.h) and comes back as a
// std::future. One dispatcher thread drains the queue into
// dynamically-sized batches — flushing when max_batch requests have
// coalesced or the max_wait deadline passes, whichever is first — and
// feeds them to PmwService::AnswerBatch, which preserves arrival order
// through its single-writer commit loop. The composition keeps the PR 2
// guarantee end to end: the transcript (answers + privacy ledger) is
// bit-identical to feeding the same arrival-ordered sequence through
// sequential PmwCm (tests/frontend_test.cc replays the recorded arrival
// log to prove it).
//
// Admission control happens in Submit, before the queue: a
// QuotaManager rejection resolves the future immediately with a typed
// error and costs zero privacy budget. A PlanCache attached at
// construction extends plan reuse across batches (epoch-keyed; see
// frontend/plan_cache.h).

#ifndef PMWCM_FRONTEND_DISPATCHER_H_
#define PMWCM_FRONTEND_DISPATCHER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/mpsc_queue.h"
#include "common/result.h"
#include "common/stats.h"
#include "convex/cm_query.h"
#include "frontend/plan_cache.h"
#include "frontend/quota_manager.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/pmw_service.h"

namespace pmw {
namespace frontend {

struct DispatcherOptions {
  /// Bound on queued (admitted, not yet served) requests; full-queue
  /// submits block — backpressure, never unbounded growth.
  size_t queue_capacity = 1024;
  /// Flush a batch at this many requests...
  size_t max_batch = 64;
  /// ...or this long after the first queued request, whichever is first.
  std::chrono::microseconds max_wait{500};
  /// Per-analyst round-robin fairness in the batch-pop policy: when a
  /// contended batch window holds more requests than max_batch, slots
  /// are dealt one per analyst per cycle (MpscQueue::PopBatchRoundRobin)
  /// instead of front-of-queue FIFO, so one chatty analyst cannot starve
  /// the window. Off by default: FIFO pops are cheaper and fairness only
  /// matters under sustained multi-analyst backpressure. Either policy
  /// keeps transcripts replayable — the commit order IS the arrival log.
  bool fair_round_robin = false;
  /// Record the ids of committed requests in commit order (ArrivalLog);
  /// tests replay the log through sequential PmwCm.
  bool record_arrival_log = false;
  /// Span sink (not owned; null disables tracing). The dispatcher
  /// assembles each served request's span tree — queue wait, batch
  /// prepare, commit with its solve/MW halves, per-shard MW — and
  /// publishes it here AFTER resolving the request's promise, so
  /// tracing sits strictly outside the answer path.
  obs::TraceRecorder* trace_recorder = nullptr;
};

struct DispatcherStats {
  long long submitted = 0;
  long long admitted = 0;
  /// Rejected by the QuotaManager before entering the queue.
  long long quota_rejected = 0;
  /// Rejected because the dispatcher had already shut down.
  long long shutdown_rejected = 0;
  /// Admitted requests whose deadline passed while queued; resolved with
  /// kDeadlineExpired at zero privacy cost (quota slot refunded, never
  /// served, never logged as an arrival).
  long long deadline_expired = 0;
  long long batches = 0;
  /// Requests per dispatched batch (how well the deadline coalesces).
  RunningStats batch_fill;
  /// Server-side latency split, per served request, in microseconds:
  /// time spent in the MPSC queue before the request's batch formed, and
  /// wall time of the serving call that answered it (batch-attributed —
  /// every request in a batch shares its batch's serve time). The same
  /// numbers ride back to clients per-answer as ServingMeta
  /// queue_wait_us/serve_us; these are the aggregate moments the stats
  /// RPC surfaces.
  RunningStats queue_wait_us;
  RunningStats serve_us;

  /// One row per dispatcher for comparative tables, same convention as
  /// ServeStats. api::ServerEndpoint::Report() extends the row with
  /// codec/transport counters.
  static std::vector<std::string> TableHeader();
  std::vector<std::string> TableRow() const;
  /// TableHeader + this dispatcher's TableRow via common/table_printer.
  std::string ToString() const;
};

/// What a Submit future resolves with: the released theta (or typed
/// error) plus the serving metadata the api layer forwards to clients.
struct Served {
  Result<convex::Vec> answer;
  /// Meaningful only when the request reached the service (default
  /// elsewhere, e.g. quota/deadline/shutdown rejections).
  serve::QueryOutcome outcome;
  /// Latency split (see DispatcherStats): queue wait until the request's
  /// batch formed, and the batch's serving wall time. Zero for requests
  /// that never reached the queue (quota/shutdown rejections); expired
  /// requests carry their queue wait with serve_us = 0.
  uint64_t queue_wait_us = 0;
  uint64_t serve_us = 0;

  Served(Result<convex::Vec> a) : answer(std::move(a)) {}  // NOLINT
  Served(Result<convex::Vec> a, serve::QueryOutcome o)
      : answer(std::move(a)), outcome(o) {}
};

class Dispatcher {
 public:
  /// `service` must outlive the dispatcher and must not be driven by
  /// anyone else while the dispatcher runs (it is the single writer).
  /// `quota` and `plan_cache` are optional (null disables the feature)
  /// and not owned; `plan_cache` is attached to the service here and
  /// detached on Shutdown. The dispatcher thread starts immediately.
  Dispatcher(serve::PmwService* service, QuotaManager* quota,
             PlanCache* plan_cache, const DispatcherOptions& options = {});

  /// Shutdown().
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Submits one query on behalf of `analyst_id`. Thread-safe; blocks
  /// only when the queue is full. The future resolves with the released
  /// theta or a typed error (quota rejection, deadline expiry, mechanism
  /// kHalted / kResourceExhausted, or shutdown). If `request_id` is
  /// non-null it receives the request's unique id (what ArrivalLog
  /// records). A non-default `deadline` bounds how long the request may
  /// wait in the queue: if it expires before the dispatcher hands the
  /// request to the service, the future resolves with kDeadlineExpired,
  /// the quota slot is refunded, and the mechanism never sees the query
  /// (zero privacy cost).
  std::future<Served> Submit(
      const std::string& analyst_id, const convex::CmQuery& query,
      uint64_t* request_id = nullptr,
      std::chrono::steady_clock::time_point deadline = {});

  /// Stops accepting work, serves everything already queued, joins the
  /// dispatcher thread, and detaches the plan cache from the service.
  /// Idempotent and safe to call from any thread.
  void Shutdown();

  /// Ids of committed requests in commit (arrival) order. Complete only
  /// after Shutdown; empty unless options.record_arrival_log.
  std::vector<uint64_t> ArrivalLog() const;

  DispatcherStats stats() const;
  serve::PmwService& service() { return *service_; }

 private:
  struct Request {
    uint64_t id = 0;
    std::string analyst_id;
    convex::CmQuery query;
    /// steady_clock epoch (the default) means no deadline.
    std::chrono::steady_clock::time_point deadline{};
    /// When the request passed admission and entered the queue; the
    /// dispatch loop turns it into the queue-wait half of the latency
    /// split.
    std::chrono::steady_clock::time_point enqueued_at{};
    std::promise<Served> promise;
  };

  void DispatchLoop();

  /// Registry handles (instruments live in the service's registry, so
  /// one scrape covers both layers); resolved once at construction.
  struct Instruments {
    obs::Counter* submitted = nullptr;
    obs::Counter* admitted = nullptr;
    obs::Counter* quota_rejected = nullptr;
    obs::Counter* shutdown_rejected = nullptr;
    obs::Counter* deadline_expired = nullptr;
    obs::Counter* batches = nullptr;
    obs::Counter* plan_evicted = nullptr;
    obs::Counter* plan_admission_rejected = nullptr;
    obs::Counter* plan_stale_dropped = nullptr;
    obs::Histogram* batch_fill = nullptr;
    obs::Histogram* queue_wait_us = nullptr;
    obs::Histogram* serve_us = nullptr;
  };

  /// Mirrors the plan cache's replacement counters into the registry as
  /// deltas (counters are monotonic; the cache owns the totals). Called
  /// from the dispatch loop after each served batch and once more from
  /// Shutdown after the loop joins.
  void PublishPlanCacheMetrics();

  serve::PmwService* service_;
  QuotaManager* quota_;
  PlanCache* plan_cache_;
  const DispatcherOptions options_;
  Instruments m_;
  MpscQueue<Request> queue_;
  std::atomic<uint64_t> next_id_{0};
  std::atomic<bool> shutdown_{false};
  std::mutex shutdown_mutex_;  // serializes Shutdown callers
  mutable std::mutex stats_mutex_;
  DispatcherStats stats_;
  /// Cache totals already published to the registry (dispatch-loop
  /// local, read once more by Shutdown after the join).
  serve::PlanCacheCounters published_plan_counters_;
  std::vector<uint64_t> arrival_log_;
  std::thread dispatcher_;  // last member: starts in the constructor
};

/// A named handle binding one analyst's identity to a dispatcher — what
/// client code holds. Sessions are cheap; one per analyst thread.
class AnalystSession {
 public:
  /// `dispatcher` must outlive the session.
  AnalystSession(Dispatcher* dispatcher, std::string analyst_id);

  /// Submit under this session's identity (see Dispatcher::Submit).
  std::future<Served> Submit(
      const convex::CmQuery& query, uint64_t* request_id = nullptr,
      std::chrono::steady_clock::time_point deadline = {});

  const std::string& analyst_id() const { return analyst_id_; }

 private:
  Dispatcher* dispatcher_;
  std::string analyst_id_;
};

}  // namespace frontend
}  // namespace pmw

#endif  // PMWCM_FRONTEND_DISPATCHER_H_
