#include "frontend/plan_cache.h"

#include <algorithm>

namespace pmw {
namespace frontend {
namespace {

// Derives the 4 sketch row hashes from one base hash by odd-constant
// multiplication (distinct bit mixes per row, no extra hashing of the
// key itself).
constexpr uint64_t kRowSeeds[4] = {
    0x9e3779b97f4a7c15ull,
    0xc2b2ae3d27d4eb4full,
    0x165667b19e3779f9ull,
    0x27d4eb2f165667c5ull,
};

inline uint64_t MixRow(uint64_t hash, int row) {
  uint64_t x = hash * kRowSeeds[row];
  x ^= x >> 29;
  return x;
}

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

PlanCache::FreqSketch::FreqSketch(size_t capacity) {
  // Width >= 4x capacity per row keeps collision noise small relative to
  // the admission threshold; power of two so Index is a mask.
  const size_t width = NextPow2(std::max<size_t>(capacity * 4, 16));
  counters_.assign(width * 4, 0);
  row_mask_ = width - 1;
  // Halve all counters after ~10x capacity recordings: popularity decays
  // with a half-life proportional to the cache size, so a query that
  // stopped arriving cannot hold its slot on ancient credit.
  sample_period_ = static_cast<long long>(capacity) * 10;
}

size_t PlanCache::FreqSketch::Index(uint64_t hash, int row) const {
  const size_t width = row_mask_ + 1;
  return static_cast<size_t>(row) * width +
         static_cast<size_t>(MixRow(hash, row) & row_mask_);
}

void PlanCache::FreqSketch::Record(uint64_t hash) {
  for (int row = 0; row < 4; ++row) {
    uint8_t& counter = counters_[Index(hash, row)];
    if (counter < 255) ++counter;
  }
  if (++recorded_ >= sample_period_) {
    recorded_ = 0;
    for (uint8_t& counter : counters_) {
      counter = static_cast<uint8_t>(counter >> 1);
    }
  }
}

uint32_t PlanCache::FreqSketch::Estimate(uint64_t hash) const {
  uint32_t estimate = 255;
  for (int row = 0; row < 4; ++row) {
    estimate = std::min<uint32_t>(estimate, counters_[Index(hash, row)]);
  }
  return estimate;
}

PlanCache::PlanCache(size_t max_entries)
    : max_entries_(std::max<size_t>(max_entries, 1)),
      slots_(max_entries_),
      sketch_(max_entries_) {
  index_.reserve(max_entries_);
}

uint64_t PlanCache::KeyHash(const serve::QueryKey& key) {
  return static_cast<uint64_t>(serve::QueryKeyHash()(key));
}

void PlanCache::ReleaseSlot(size_t slot) {
  Slot& s = slots_[slot];
  index_.erase(s.key);
  s.occupied = false;
  s.referenced = false;
  s.key = serve::QueryKey{nullptr, nullptr};
  s.plan = core::PreparedQuery{};
  --occupied_;
}

size_t PlanCache::FindVictim() {
  // Second-chance scan: a referenced slot survives one pass (ref bit
  // cleared), an unreferenced occupied slot is the victim, and an empty
  // slot is free real estate. Bounded: every step either clears a ref
  // bit (at most max_entries_ of them) or terminates.
  for (;;) {
    Slot& s = slots_[hand_];
    if (s.occupied && s.referenced) {
      s.referenced = false;
      hand_ = (hand_ + 1) % max_entries_;
      continue;
    }
    const size_t slot = hand_;
    hand_ = (hand_ + 1) % max_entries_;
    return slot;
  }
}

bool PlanCache::Lookup(const serve::QueryKey& key,
                       const serve::PlanStamp& stamp,
                       core::PreparedQuery* plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Every probe feeds the admission sketch, hit or miss: popularity is a
  // property of the request stream, not of cache residency.
  sketch_.Record(KeyHash(key));
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return false;
  }
  Slot& slot = slots_[it->second];
  if (slot.shard_set != stamp.shard_set || slot.content != stamp.content) {
    // The hypothesis only moves forward: a stamp mismatch means this plan
    // can never be valid again, so drop it now rather than letting it
    // squat in the ring until the hand comes around.
    ReleaseSlot(it->second);
    ++stats_.stale_dropped;
    ++stats_.misses;
    return false;
  }
  *plan = slot.plan;
  // Content hit, possibly across versions: restamp so the served plan is
  // byte-identical to what Prepare would emit against the probing epoch
  // (hook contract; AnswerPrepared trusts the version stamp).
  plan->hypothesis_version = stamp.version;
  slot.referenced = true;
  ++stats_.hits;
  return true;
}

void PlanCache::Insert(const serve::QueryKey& key,
                       const serve::PlanStamp& stamp,
                       const core::PreparedQuery& plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place: same key, newer stamp (the resident entry went
    // stale and Prepare just recomputed it).
    Slot& slot = slots_[it->second];
    slot.shard_set = stamp.shard_set;
    slot.content = stamp.content;
    slot.plan = plan;
    slot.referenced = true;
    ++stats_.insertions;
    return;
  }
  size_t target = FindVictim();
  if (slots_[target].occupied) {
    // Full ring: the newcomer must win the admission duel against the
    // CLOCK victim. A one-shot query (estimated frequency below the
    // resident's) is refused so scans cannot wash out the hot working
    // set; ties go to the newcomer (a cold working-set shift must be
    // able to displace decayed residents).
    const uint32_t newcomer = sketch_.Estimate(KeyHash(key));
    const uint32_t resident = sketch_.Estimate(KeyHash(slots_[target].key));
    if (newcomer < resident) {
      ++stats_.admission_rejected;
      return;
    }
    ReleaseSlot(target);
    ++stats_.evicted;
  }
  Slot& slot = slots_[target];
  slot.occupied = true;
  // Ref bit starts clear: residency must be earned by a hit, not granted
  // on insertion, or a full ring of fresh entries would all survive the
  // hand's first pass and CLOCK would degenerate to FIFO.
  slot.referenced = false;
  slot.key = key;
  slot.shard_set = stamp.shard_set;
  slot.content = stamp.content;
  slot.plan = plan;
  ++occupied_;
  index_[key] = target;
  ++stats_.insertions;
}

void PlanCache::OnEpochPublish(const serve::PlanStamp& stamp) {
  std::lock_guard<std::mutex> lock(mutex_);
  // No wholesale clear: entries whose content fingerprints still match
  // the new epoch remain byte-valid (soft rounds and fingerprint-stable
  // republishes), and entries that went stale are dropped lazily when a
  // probe actually touches them. Publishing only advances the stamp the
  // accessors report.
  stamp_ = stamp;
}

serve::PlanCacheCounters PlanCache::Counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {stats_.evicted, stats_.admission_rejected, stats_.stale_dropped};
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return occupied_;
}

serve::PlanStamp PlanCache::current_stamp() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stamp_;
}

}  // namespace frontend
}  // namespace pmw
