#include "frontend/plan_cache.h"

#include "common/check.h"

namespace pmw {
namespace frontend {

PlanCache::PlanCache(size_t max_entries) : max_entries_(max_entries) {
  PMW_CHECK_GE(max_entries, size_t{1});
}

bool PlanCache::Lookup(const serve::QueryKey& key, int version,
                       uint64_t shard_set, core::PreparedQuery* plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (version != version_ || shard_set != shard_set_) {
    // Defensive: the service publishes (and so invalidates) before it
    // probes, so a mismatch here means a forged epoch — never serve
    // across versions or shard partitions regardless.
    ++stats_.misses;
    return false;
  }
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  *plan = it->second;
  ++stats_.hits;
  return true;
}

void PlanCache::Insert(const serve::QueryKey& key,
                       const core::PreparedQuery& plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  // A plan from another version would be served never (Lookup checks) or
  // wrongly (if versions collided later); refuse it outright.
  if (plan.hypothesis_version != version_) return;
  if (entries_.size() >= max_entries_ && entries_.find(key) == entries_.end()) {
    entries_.erase(entries_.begin());
    ++stats_.evicted;
  }
  entries_[key] = plan;
  ++stats_.insertions;
}

void PlanCache::OnEpochPublish(int version, uint64_t shard_set) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (version == version_ && shard_set == shard_set_) {
    return;  // same hypothesis, same partition: entries stay valid
  }
  stats_.invalidated += static_cast<long long>(entries_.size());
  entries_.clear();
  version_ = version;
  shard_set_ = shard_set;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

int PlanCache::version() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return version_;
}

uint64_t PlanCache::shard_set() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shard_set_;
}

}  // namespace frontend
}  // namespace pmw
