// Dimension-independent oracle for generalized linear models — the JT14
// route (paper Theorem 4.3).
//
// Construction (regularize + output perturbation, risk analyzed through the
// GLM structure): add a ridge term (mu/2)||theta||^2 with mu chosen from the
// accuracy target, solve exactly, and release the minimizer plus Gaussian
// noise scaled to the regularized problem's sensitivity 2L/(n mu).
//
// Why this is dimension-independent for GLMs: the empirical GLM Hessian is
// E_D[link''(<theta,x>) x x^T], whose *trace* is at most the link
// smoothness times max ||x||^2 <= 1 — independent of d. Expected excess
// risk from the Gaussian noise is (1/2) sigma^2 tr(Hessian), so the noise
// cost does not pick up the sqrt(d) factor that generic losses pay (Table 1
// row 2 vs row 3). This reproduces the *shape* of JT14's bound
// n = O(1/(alpha0^2 eps0)); constants are ours. Substitution documented in
// DESIGN.md.

#ifndef PMWCM_ERM_GLM_ORACLE_H_
#define PMWCM_ERM_GLM_ORACLE_H_

#include "convex/auto_solver.h"
#include "erm/oracle.h"

namespace pmw {
namespace erm {

class GlmOracle : public Oracle {
 public:
  explicit GlmOracle(convex::SolverOptions solver_options = {});

  /// Requires query.loss->is_generalized_linear() and delta > 0.
  Result<convex::Vec> Solve(const convex::CmQuery& query,
                            const data::Dataset& dataset,
                            const OracleContext& context, Rng* rng) override;

  std::string name() const override { return "glm(jt14)"; }

  /// The ridge weight used for a given accuracy target and domain radius:
  /// mu = target_alpha / radius^2 (ridge bias <= target_alpha / 2).
  static double RidgeWeight(double target_alpha, double domain_radius);

 private:
  convex::AutoSolver solver_;
};

}  // namespace erm
}  // namespace pmw

#endif  // PMWCM_ERM_GLM_ORACLE_H_
