#include "erm/localization_oracle.h"

#include <cmath>

#include "common/check.h"
#include "convex/empirical_loss.h"
#include "dp/mechanisms.h"
#include "erm/output_perturbation_oracle.h"

namespace pmw {
namespace erm {

LocalizationOracle::LocalizationOracle(LocalizationOptions options)
    : options_(options) {
  PMW_CHECK_GE(options.phases, 1);
}

Result<convex::Vec> LocalizationOracle::Solve(const convex::CmQuery& query,
                                              const data::Dataset& dataset,
                                              const OracleContext& context,
                                              Rng* rng) {
  PMW_CHECK(rng != nullptr);
  dp::ValidatePrivacyParams(context.privacy);
  const double sigma_sc = query.loss->strong_convexity();
  if (sigma_sc <= 0.0) {
    return Status::InvalidArgument(
        "localization requires a strongly convex loss");
  }
  if (context.privacy.delta <= 0.0) {
    return Status::InvalidArgument("localization requires delta > 0");
  }

  // BST14-style localization: phase i re-solves with an extra regularizer
  // lambda_i ||theta - center_{i-1}||^2 whose weight doubles each phase.
  // The regularized problem is (sigma + lambda_i)-strongly convex, so the
  // minimizer's sensitivity — and hence the Gaussian noise — shrinks
  // geometrically, while the regularizer's bias stays controlled because
  // the centres converge to the optimum. Budgets are allocated
  // geometrically (later, lower-noise phases get more of epsilon) under
  // basic composition.
  const convex::Domain& domain = *query.domain;
  const int phases = options_.phases;
  const double lipschitz = query.loss->lipschitz();
  const double n = static_cast<double>(dataset.n());

  double weight_total = 0.0;
  for (int i = 0; i < phases; ++i) weight_total += std::pow(2.0, i);

  convex::DatasetObjective base(query.loss, &dataset);
  convex::Vec center = domain.Center();

  for (int i = 0; i < phases; ++i) {
    double share = std::pow(2.0, i) / weight_total;
    dp::PrivacyParams phase_budget{context.privacy.epsilon * share,
                                   context.privacy.delta * share};
    double lambda = (i == 0) ? 0.0 : sigma_sc * (std::pow(2.0, i) - 1.0);
    convex::PerturbedObjective regularized(
        &base, convex::Zeros(domain.dim()), lambda, center);
    convex::SolverResult solved = solver_.Minimize(regularized, domain,
                                                   &center);
    // Only the data term varies between neighbouring datasets (the
    // regularizer is a fixed public function given the previous phases'
    // outputs), so the minimizer's sensitivity is 2L/(n (sigma + lambda)).
    double sensitivity = OutputPerturbationOracle::MinimizerSensitivity(
        lipschitz, sigma_sc + lambda, dataset.n());
    (void)n;
    double noise_sigma = dp::GaussianSigma(sensitivity, phase_budget);
    convex::Vec theta = solved.theta;
    for (double& coord : theta) coord += rng->Gaussian(0.0, noise_sigma);
    domain.Project(&theta);
    center = std::move(theta);
  }
  return center;
}

}  // namespace erm
}  // namespace pmw
