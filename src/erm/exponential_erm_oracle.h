// Exponential-mechanism ERM over a data-independent net of the domain.
//
// Scores each candidate theta in the net by -l_D(theta); one record changes
// the score by at most range/n where `range` bounds the spread of the loss
// over records. Selecting with the exponential mechanism is pure eps-DP and
// has excess risk O(range * log |net| / (eps n)) over the best net point.
// Exact for 1-D interval domains with a fine grid (the linear-query
// reduction); a cross-check oracle for low-dimensional ball domains.

#ifndef PMWCM_ERM_EXPONENTIAL_ERM_ORACLE_H_
#define PMWCM_ERM_EXPONENTIAL_ERM_ORACLE_H_

#include "erm/oracle.h"

namespace pmw {
namespace erm {

struct ExponentialErmOptions {
  /// Grid points for 1-D interval domains.
  int grid_points = 257;
  /// Net size for multi-dimensional ball domains (random ball points,
  /// deterministic seed, data-independent).
  int ball_net_size = 512;
  /// Bound on max_{theta, x, x'} |l(theta;x) - l(theta;x')| used for the
  /// score sensitivity. For the library's normalized losses (values in
  /// [0, ~2]) the default 2.0 is safe.
  double loss_range = 2.0;
};

class ExponentialErmOracle : public Oracle {
 public:
  explicit ExponentialErmOracle(ExponentialErmOptions options = {});

  Result<convex::Vec> Solve(const convex::CmQuery& query,
                            const data::Dataset& dataset,
                            const OracleContext& context, Rng* rng) override;

  std::string name() const override { return "exp-mech-erm"; }

 private:
  ExponentialErmOptions options_;
};

}  // namespace erm
}  // namespace pmw

#endif  // PMWCM_ERM_EXPONENTIAL_ERM_ORACLE_H_
