// The single-CM-query oracle interface: the black box A' of Figure 3.
//
// The paper's algorithm assumes an (eps0, delta0)-DP algorithm A' that is
// (alpha0, beta0)-accurate for one CM query from the family. Section 4
// instantiates A' with the algorithms of BST14 (noisy gradient methods,
// Theorem 4.1; localization for strongly convex losses, Theorem 4.5) and
// JT14 (dimension-independent GLM algorithm, Theorem 4.3); this module
// implements each route plus auxiliary oracles for tests and ablations.

#ifndef PMWCM_ERM_ORACLE_H_
#define PMWCM_ERM_ORACLE_H_

#include <string>

#include "common/random.h"
#include "common/result.h"
#include "convex/cm_query.h"
#include "data/dataset.h"
#include "dp/privacy.h"

namespace pmw {
namespace erm {

/// Per-call context handed to an oracle.
struct OracleContext {
  /// The (eps0, delta0) budget for this single call.
  dp::PrivacyParams privacy;
  /// Accuracy target alpha_0 (a hint; oracles that auto-tune internal
  /// regularization use it, others ignore it).
  double target_alpha = 0.05;
  /// Failure probability target beta_0.
  double target_beta = 0.05;
};

/// A differentially private approximate minimizer for one CM query.
class Oracle {
 public:
  virtual ~Oracle() = default;

  /// Returns theta_hat with l_D(theta_hat) <= min l_D + alpha0 (whp),
  /// spending context.privacy on `dataset`.
  virtual Result<convex::Vec> Solve(const convex::CmQuery& query,
                                    const data::Dataset& dataset,
                                    const OracleContext& context,
                                    Rng* rng) = 0;

  virtual std::string name() const = 0;
};

}  // namespace erm
}  // namespace pmw

#endif  // PMWCM_ERM_ORACLE_H_
