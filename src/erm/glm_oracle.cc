#include "erm/glm_oracle.h"

#include <cmath>

#include "common/check.h"
#include "convex/empirical_loss.h"
#include "dp/mechanisms.h"

namespace pmw {
namespace erm {

GlmOracle::GlmOracle(convex::SolverOptions solver_options)
    : solver_(solver_options) {}

double GlmOracle::RidgeWeight(double target_alpha, double domain_radius) {
  PMW_CHECK_GT(target_alpha, 0.0);
  PMW_CHECK_GT(domain_radius, 0.0);
  return target_alpha / (domain_radius * domain_radius);
}

Result<convex::Vec> GlmOracle::Solve(const convex::CmQuery& query,
                                     const data::Dataset& dataset,
                                     const OracleContext& context, Rng* rng) {
  PMW_CHECK(rng != nullptr);
  dp::ValidatePrivacyParams(context.privacy);
  if (!query.loss->is_generalized_linear()) {
    return Status::InvalidArgument("glm oracle requires a GLM loss");
  }
  if (context.privacy.delta <= 0.0) {
    return Status::InvalidArgument("glm oracle requires delta > 0");
  }

  const convex::Domain& domain = *query.domain;
  const double radius = 0.5 * domain.Diameter();
  const double mu = RidgeWeight(context.target_alpha, radius);

  // Regularized empirical objective l_D(theta) + (mu/2)||theta||^2.
  convex::DatasetObjective base(query.loss, &dataset);
  convex::PerturbedObjective regularized(&base, convex::Zeros(domain.dim()),
                                         mu, convex::Zeros(domain.dim()));
  convex::SolverResult solved = solver_.Minimize(regularized, domain);

  // The regularized objective is mu-strongly convex, so the minimizer's
  // sensitivity is 2(L + mu * radius)/(n mu); the ridge gradient term adds
  // mu * radius to the effective Lipschitz constant over the domain.
  const double effective_lipschitz = query.loss->lipschitz() + mu * radius;
  const double sensitivity =
      2.0 * effective_lipschitz / (static_cast<double>(dataset.n()) * mu);
  const double noise_sigma = dp::GaussianSigma(sensitivity, context.privacy);

  convex::Vec theta = solved.theta;
  for (double& coord : theta) coord += rng->Gaussian(0.0, noise_sigma);
  domain.Project(&theta);
  return theta;
}

}  // namespace erm
}  // namespace pmw
