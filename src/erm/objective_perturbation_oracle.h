// Objective perturbation (Chaudhuri-Monteleoni-Sarwate / Kifer-Smith-
// Thakurta style): minimize the empirical loss plus a random linear term
// and a small ridge,
//   theta_hat = argmin l_D(theta) + <b, theta>/n + (mu/2)||theta||^2,
// with Gaussian b. Often more accurate than output perturbation in practice
// for smooth losses; shipped as an alternative A' and ablation subject.
// Calibration follows the KST12 Gaussian variant: ||b|| noise scale
// 2L sqrt(2 ln(1.25/delta))/eps and ridge mu >= 2 beta_smooth/(n eps),
// where beta_smooth bounds the per-record Hessian norm.

#ifndef PMWCM_ERM_OBJECTIVE_PERTURBATION_ORACLE_H_
#define PMWCM_ERM_OBJECTIVE_PERTURBATION_ORACLE_H_

#include "convex/auto_solver.h"
#include "erm/oracle.h"

namespace pmw {
namespace erm {

struct ObjectivePerturbationOptions {
  /// Per-record smoothness bound used for the ridge weight (the library's
  /// normalized margin losses all satisfy beta_smooth <= 1).
  double smoothness_bound = 1.0;
};

class ObjectivePerturbationOracle : public Oracle {
 public:
  explicit ObjectivePerturbationOracle(ObjectivePerturbationOptions options = {},
                                       convex::SolverOptions solver_options = {});

  /// Requires delta > 0.
  Result<convex::Vec> Solve(const convex::CmQuery& query,
                            const data::Dataset& dataset,
                            const OracleContext& context, Rng* rng) override;

  std::string name() const override { return "objective-perturbation"; }

 private:
  ObjectivePerturbationOptions options_;
  convex::AutoSolver solver_;
};

}  // namespace erm
}  // namespace pmw

#endif  // PMWCM_ERM_OBJECTIVE_PERTURBATION_ORACLE_H_
