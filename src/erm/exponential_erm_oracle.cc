#include "erm/exponential_erm_oracle.h"

#include <cmath>

#include "common/check.h"
#include "convex/empirical_loss.h"
#include "dp/mechanisms.h"

namespace pmw {
namespace erm {

ExponentialErmOracle::ExponentialErmOracle(ExponentialErmOptions options)
    : options_(options) {
  PMW_CHECK_GE(options.grid_points, 2);
  PMW_CHECK_GE(options.ball_net_size, 2);
  PMW_CHECK_GT(options.loss_range, 0.0);
}

Result<convex::Vec> ExponentialErmOracle::Solve(const convex::CmQuery& query,
                                                const data::Dataset& dataset,
                                                const OracleContext& context,
                                                Rng* rng) {
  PMW_CHECK(rng != nullptr);
  dp::ValidatePrivacyParams(context.privacy);
  const convex::Domain& domain = *query.domain;

  // Build a data-independent candidate net. The fixed seed makes the net a
  // public object: it depends only on the query/domain, never on the data.
  std::vector<convex::Vec> net;
  if (const auto* interval = dynamic_cast<const convex::Interval*>(&domain)) {
    net.reserve(options_.grid_points);
    for (int i = 0; i < options_.grid_points; ++i) {
      double t = static_cast<double>(i) / (options_.grid_points - 1);
      net.push_back({interval->lo() + t * (interval->hi() - interval->lo())});
    }
  } else {
    Rng net_rng(0xbada55);  // public, data-independent
    net.reserve(options_.ball_net_size + 1);
    net.push_back(domain.Center());
    for (int i = 0; i < options_.ball_net_size; ++i) {
      convex::Vec point = net_rng.InUnitBall(domain.dim());
      // Scale the unit-ball sample into the domain around its centre.
      convex::Vec candidate = domain.Center();
      convex::AddScaledInPlace(&candidate, point, 0.5 * domain.Diameter());
      domain.Project(&candidate);
      net.push_back(std::move(candidate));
    }
  }

  convex::DatasetObjective objective(query.loss, &dataset);
  std::vector<double> scores(net.size());
  for (size_t i = 0; i < net.size(); ++i) {
    scores[i] = -objective.Value(net[i]);
  }
  const double sensitivity =
      options_.loss_range / static_cast<double>(dataset.n());
  int choice = dp::ExponentialMechanism(scores, sensitivity,
                                        context.privacy.epsilon, rng);
  return net[choice];
}

}  // namespace erm
}  // namespace pmw
