// Noisy projected gradient descent: the BST14 route (paper Theorem 4.1).
//
// Runs `steps` iterations of projected gradient descent on the empirical
// loss, adding Gaussian noise to each full gradient. The empirical gradient
// has L2 sensitivity 2L/n (one record changes one summand by at most 2L);
// per-step privacy comes from splitting the call's budget with strong
// composition (dp::PerRoundBudget). Achieves excess risk
// O(sqrt(d) polylog / (n eps alpha))-shaped error, matching Theorem 4.1's
// n = O(sqrt(d)/(alpha0 eps0)) up to constants.

#ifndef PMWCM_ERM_NOISY_GRADIENT_ORACLE_H_
#define PMWCM_ERM_NOISY_GRADIENT_ORACLE_H_

#include "erm/oracle.h"

namespace pmw {
namespace erm {

struct NoisyGradientOptions {
  /// Number of noisy gradient iterations.
  int steps = 64;
  /// Use the average of the iterates (recommended for convex losses)
  /// rather than the final iterate.
  bool average_iterates = true;
};

class NoisyGradientOracle : public Oracle {
 public:
  explicit NoisyGradientOracle(NoisyGradientOptions options = {});

  Result<convex::Vec> Solve(const convex::CmQuery& query,
                            const data::Dataset& dataset,
                            const OracleContext& context, Rng* rng) override;

  std::string name() const override { return "noisy-gd(bst14)"; }

 private:
  NoisyGradientOptions options_;
};

}  // namespace erm
}  // namespace pmw

#endif  // PMWCM_ERM_NOISY_GRADIENT_ORACLE_H_
