#include "erm/noisy_gradient_oracle.h"

#include <cmath>

#include "common/check.h"
#include "convex/empirical_loss.h"
#include "dp/composition.h"
#include "dp/mechanisms.h"

namespace pmw {
namespace erm {

NoisyGradientOracle::NoisyGradientOracle(NoisyGradientOptions options) : options_(options) {
  PMW_CHECK_GE(options.steps, 1);
}

Result<convex::Vec> NoisyGradientOracle::Solve(const convex::CmQuery& query,
                                               const data::Dataset& dataset,
                                               const OracleContext& context,
                                               Rng* rng) {
  PMW_CHECK(rng != nullptr);
  dp::ValidatePrivacyParams(context.privacy);
  if (context.privacy.delta <= 0.0) {
    return Status::InvalidArgument(
        "noisy-gd oracle needs delta > 0 for per-step strong composition");
  }
  const convex::Domain& domain = *query.domain;
  const int d = domain.dim();
  const double lipschitz = query.loss->lipschitz();
  const double n = static_cast<double>(dataset.n());

  // Per-step budget and Gaussian scale for gradient sensitivity 2L/n.
  dp::PrivacyParams per_step =
      dp::PerRoundBudget(context.privacy, options_.steps);
  const double sensitivity = 2.0 * lipschitz / n;
  const double sigma = dp::GaussianSigma(sensitivity, per_step);

  convex::DatasetObjective objective(query.loss, &dataset);
  convex::Vec theta = domain.Center();
  convex::Vec sum = theta;

  // Constant step size D / (G sqrt(T)) with G^2 = L^2 + d sigma^2, the
  // standard SGD tuning for noisy gradients.
  const double diameter = domain.Diameter();
  const double grad_bound =
      std::sqrt(lipschitz * lipschitz + d * sigma * sigma);
  const double step =
      diameter / (std::max(grad_bound, 1e-12) *
                  std::sqrt(static_cast<double>(options_.steps)));

  for (int t = 0; t < options_.steps; ++t) {
    convex::Vec grad = objective.Gradient(theta);
    for (int j = 0; j < d; ++j) grad[j] += rng->Gaussian(0.0, sigma);
    convex::AddScaledInPlace(&theta, grad, -step);
    domain.Project(&theta);
    if (options_.average_iterates) {
      convex::AddScaledInPlace(&sum, theta, 1.0);
    }
  }
  if (!options_.average_iterates) return theta;
  convex::ScaleInPlace(&sum, 1.0 / (options_.steps + 1.0));
  domain.Project(&sum);
  return sum;
}

}  // namespace erm
}  // namespace pmw
