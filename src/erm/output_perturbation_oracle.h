// Output perturbation for strongly convex losses (Chaudhuri-Monteleoni-
// Sarwate style; one of the BST14 routes behind paper Theorem 4.5).
//
// For a sigma-strongly convex empirical loss, the exact minimizer has L2
// sensitivity at most 2L/(n sigma) between neighbouring datasets, so
// releasing argmin + Gaussian noise calibrated to that sensitivity is
// (eps, delta)-DP. Excess risk is O(L sigma_noise sqrt(d)) — the
// sqrt(d)/(sigma alpha eps) shape of Table 1 row 4's single-query column.

#ifndef PMWCM_ERM_OUTPUT_PERTURBATION_ORACLE_H_
#define PMWCM_ERM_OUTPUT_PERTURBATION_ORACLE_H_

#include "convex/auto_solver.h"
#include "erm/oracle.h"

namespace pmw {
namespace erm {

class OutputPerturbationOracle : public Oracle {
 public:
  explicit OutputPerturbationOracle(convex::SolverOptions solver_options = {});

  /// Requires query.loss->strong_convexity() > 0 (returns InvalidArgument
  /// otherwise) and delta > 0.
  Result<convex::Vec> Solve(const convex::CmQuery& query,
                            const data::Dataset& dataset,
                            const OracleContext& context, Rng* rng) override;

  std::string name() const override { return "output-perturbation"; }

  /// The minimizer's L2 sensitivity bound 2L/(n sigma).
  static double MinimizerSensitivity(double lipschitz, double strong_convexity,
                                     int n);

 private:
  convex::AutoSolver solver_;
};

}  // namespace erm
}  // namespace pmw

#endif  // PMWCM_ERM_OUTPUT_PERTURBATION_ORACLE_H_
