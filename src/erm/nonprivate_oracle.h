// A non-private "oracle": exact ERM via an inner solver. The epsilon = inf
// ablation baseline, and the reference answer in accuracy measurements.

#ifndef PMWCM_ERM_NONPRIVATE_ORACLE_H_
#define PMWCM_ERM_NONPRIVATE_ORACLE_H_

#include "convex/auto_solver.h"
#include "erm/oracle.h"

namespace pmw {
namespace erm {

class NonPrivateOracle : public Oracle {
 public:
  explicit NonPrivateOracle(convex::SolverOptions options = {});

  Result<convex::Vec> Solve(const convex::CmQuery& query,
                            const data::Dataset& dataset,
                            const OracleContext& context, Rng* rng) override;

  std::string name() const override { return "non-private"; }

 private:
  convex::AutoSolver solver_;
};

/// Failure-injection decorator: perturbs the wrapped oracle's answer by a
/// fixed-radius step inside the domain, modelling an A' that violates its
/// (alpha0, beta0) accuracy contract. Used by tests and the ablation bench
/// to verify the PMW accuracy analysis degrades exactly as Claim 3.6
/// predicts when assumption (2) fails.
class BiasedOracle : public Oracle {
 public:
  BiasedOracle(Oracle* inner, double bias_radius);

  Result<convex::Vec> Solve(const convex::CmQuery& query,
                            const data::Dataset& dataset,
                            const OracleContext& context, Rng* rng) override;

  std::string name() const override;

 private:
  Oracle* inner_;
  double bias_radius_;
};

}  // namespace erm
}  // namespace pmw

#endif  // PMWCM_ERM_NONPRIVATE_ORACLE_H_
