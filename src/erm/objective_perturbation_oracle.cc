#include "erm/objective_perturbation_oracle.h"

#include <cmath>

#include "common/check.h"
#include "convex/empirical_loss.h"
#include "dp/mechanisms.h"

namespace pmw {
namespace erm {

ObjectivePerturbationOracle::ObjectivePerturbationOracle(
    ObjectivePerturbationOptions options, convex::SolverOptions solver_options)
    : options_(options), solver_(solver_options) {
  PMW_CHECK_GT(options.smoothness_bound, 0.0);
}

Result<convex::Vec> ObjectivePerturbationOracle::Solve(
    const convex::CmQuery& query, const data::Dataset& dataset,
    const OracleContext& context, Rng* rng) {
  PMW_CHECK(rng != nullptr);
  dp::ValidatePrivacyParams(context.privacy);
  if (context.privacy.delta <= 0.0) {
    return Status::InvalidArgument(
        "objective perturbation (Gaussian variant) requires delta > 0");
  }
  const convex::Domain& domain = *query.domain;
  const int d = domain.dim();
  const double n = static_cast<double>(dataset.n());
  const double lipschitz = query.loss->lipschitz();

  // Half the epsilon pays for the noise vector, half for the ridge slack.
  const double eps_noise = 0.5 * context.privacy.epsilon;
  const double b_sigma = 2.0 * lipschitz *
                         std::sqrt(2.0 * std::log(1.25 / context.privacy.delta)) /
                         eps_noise;
  const double mu =
      2.0 * options_.smoothness_bound /
      (n * std::max(0.5 * context.privacy.epsilon, 1e-12));

  convex::Vec b = rng->GaussianVector(d, b_sigma);
  convex::ScaleInPlace(&b, 1.0 / n);

  convex::DatasetObjective base(query.loss, &dataset);
  convex::PerturbedObjective perturbed(&base, std::move(b), mu,
                                       convex::Zeros(d));
  convex::SolverResult solved = solver_.Minimize(perturbed, domain);
  return solved.theta;
}

}  // namespace erm
}  // namespace pmw
