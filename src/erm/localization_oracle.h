// Localization for strongly convex losses — the BST14 route behind paper
// Theorem 4.5's sqrt(d)/(sqrt(sigma) alpha eps) shape.
//
// Phased output perturbation: each phase solves the ERM restricted to a
// ball around the previous (noisy) estimate whose radius halves each phase.
// Strong convexity guarantees the true minimizer stays inside the shrinking
// balls (whp), so later phases add less noise where it matters. Each phase
// spends an equal share of the budget under strong composition.

#ifndef PMWCM_ERM_LOCALIZATION_ORACLE_H_
#define PMWCM_ERM_LOCALIZATION_ORACLE_H_

#include "convex/auto_solver.h"
#include "erm/oracle.h"

namespace pmw {
namespace erm {

struct LocalizationOptions {
  /// Number of halving phases (log-many suffice).
  int phases = 5;
};

class LocalizationOracle : public Oracle {
 public:
  explicit LocalizationOracle(LocalizationOptions options = {});

  /// Requires strong convexity > 0 and delta > 0.
  Result<convex::Vec> Solve(const convex::CmQuery& query,
                            const data::Dataset& dataset,
                            const OracleContext& context, Rng* rng) override;

  std::string name() const override { return "localization(bst14)"; }

 private:
  LocalizationOptions options_;
  convex::AutoSolver solver_;
};

}  // namespace erm
}  // namespace pmw

#endif  // PMWCM_ERM_LOCALIZATION_ORACLE_H_
