#include "erm/output_perturbation_oracle.h"

#include "common/check.h"
#include "convex/empirical_loss.h"
#include "dp/mechanisms.h"

namespace pmw {
namespace erm {

OutputPerturbationOracle::OutputPerturbationOracle(
    convex::SolverOptions solver_options)
    : solver_(solver_options) {}

double OutputPerturbationOracle::MinimizerSensitivity(double lipschitz,
                                                      double strong_convexity,
                                                      int n) {
  PMW_CHECK_GT(lipschitz, 0.0);
  PMW_CHECK_GT(strong_convexity, 0.0);
  PMW_CHECK_GE(n, 1);
  return 2.0 * lipschitz / (static_cast<double>(n) * strong_convexity);
}

Result<convex::Vec> OutputPerturbationOracle::Solve(
    const convex::CmQuery& query, const data::Dataset& dataset,
    const OracleContext& context, Rng* rng) {
  PMW_CHECK(rng != nullptr);
  dp::ValidatePrivacyParams(context.privacy);
  const double sigma_sc = query.loss->strong_convexity();
  if (sigma_sc <= 0.0) {
    return Status::InvalidArgument(
        "output perturbation requires a strongly convex loss");
  }
  if (context.privacy.delta <= 0.0) {
    return Status::InvalidArgument(
        "output perturbation (Gaussian) requires delta > 0");
  }

  convex::DatasetObjective objective(query.loss, &dataset);
  convex::SolverResult solved = solver_.Minimize(objective, *query.domain);

  const double sensitivity = MinimizerSensitivity(
      query.loss->lipschitz(), sigma_sc, dataset.n());
  const double noise_sigma = dp::GaussianSigma(sensitivity, context.privacy);
  convex::Vec theta = solved.theta;
  for (double& coord : theta) coord += rng->Gaussian(0.0, noise_sigma);
  query.domain->Project(&theta);
  return theta;
}

}  // namespace erm
}  // namespace pmw
