#include "erm/nonprivate_oracle.h"

#include "common/check.h"
#include "convex/empirical_loss.h"

namespace pmw {
namespace erm {

NonPrivateOracle::NonPrivateOracle(convex::SolverOptions options)
    : solver_(options) {}

Result<convex::Vec> NonPrivateOracle::Solve(const convex::CmQuery& query,
                                            const data::Dataset& dataset,
                                            const OracleContext& /*context*/,
                                            Rng* /*rng*/) {
  convex::DatasetObjective objective(query.loss, &dataset);
  convex::SolverResult result = solver_.Minimize(objective, *query.domain);
  return result.theta;
}

BiasedOracle::BiasedOracle(Oracle* inner, double bias_radius)
    : inner_(inner), bias_radius_(bias_radius) {
  PMW_CHECK(inner != nullptr);
  PMW_CHECK_GE(bias_radius, 0.0);
}

Result<convex::Vec> BiasedOracle::Solve(const convex::CmQuery& query,
                                        const data::Dataset& dataset,
                                        const OracleContext& context,
                                        Rng* rng) {
  Result<convex::Vec> inner = inner_->Solve(query, dataset, context, rng);
  if (!inner.ok()) return inner;
  convex::Vec theta = std::move(inner).value();
  convex::Vec direction = rng->OnUnitSphere(static_cast<int>(theta.size()));
  convex::AddScaledInPlace(&theta, direction, bias_radius_);
  query.domain->Project(&theta);
  return theta;
}

std::string BiasedOracle::name() const {
  return "biased(" + inner_->name() + ")";
}

}  // namespace erm
}  // namespace pmw
