#include "erm/private_frank_wolfe_oracle.h"

#include <cmath>

#include "common/check.h"
#include "convex/empirical_loss.h"
#include "convex/frank_wolfe.h"
#include "dp/composition.h"
#include "dp/mechanisms.h"

namespace pmw {
namespace erm {
namespace {

// Data-independent vertex set for the domain: corners for boxes/intervals/
// simplices, a fixed sphere net for L2 balls.
std::vector<convex::Vec> VertexSet(const convex::Domain& domain,
                                   int sphere_net_size) {
  std::vector<convex::Vec> vertices;
  if (const auto* interval =
          dynamic_cast<const convex::Interval*>(&domain)) {
    vertices.push_back({interval->lo()});
    vertices.push_back({interval->hi()});
    return vertices;
  }
  if (dynamic_cast<const convex::Simplex*>(&domain) != nullptr) {
    for (int i = 0; i < domain.dim(); ++i) {
      convex::Vec v = convex::Zeros(domain.dim());
      v[i] = 1.0;
      vertices.push_back(std::move(v));
    }
    return vertices;
  }
  if (const auto* ball = dynamic_cast<const convex::L2Ball*>(&domain)) {
    Rng net_rng(0xf00dcafe);  // public, data-independent
    for (int i = 0; i < sphere_net_size; ++i) {
      convex::Vec v = net_rng.OnUnitSphere(domain.dim());
      convex::ScaleInPlace(&v, ball->radius());
      convex::Vec vertex = ball->Center();
      convex::AddScaledInPlace(&vertex, v, 1.0);
      vertices.push_back(std::move(vertex));
    }
    return vertices;
  }
  // Box: all 2^d corners for small d, otherwise axis midpoints + corners
  // of a sample (capped at 1024 vertices).
  if (dynamic_cast<const convex::Box*>(&domain) != nullptr &&
      domain.dim() <= 10) {
    convex::Vec lo(domain.dim(), -1e30), hi(domain.dim(), 1e30);
    domain.Project(&lo);
    domain.Project(&hi);
    int corners = 1 << domain.dim();
    for (int mask = 0; mask < corners; ++mask) {
      convex::Vec v(domain.dim());
      for (int j = 0; j < domain.dim(); ++j) {
        v[j] = (mask >> j) & 1 ? hi[j] : lo[j];
      }
      vertices.push_back(std::move(v));
    }
    return vertices;
  }
  PMW_CHECK_MSG(false, "private frank-wolfe: unsupported domain "
                           << domain.name());
  return vertices;
}

}  // namespace

PrivateFrankWolfeOracle::PrivateFrankWolfeOracle(
    PrivateFrankWolfeOptions options)
    : options_(options) {
  PMW_CHECK_GE(options.steps, 1);
  PMW_CHECK_GE(options.sphere_net_size, 2);
}

Result<convex::Vec> PrivateFrankWolfeOracle::Solve(
    const convex::CmQuery& query, const data::Dataset& dataset,
    const OracleContext& context, Rng* rng) {
  PMW_CHECK(rng != nullptr);
  dp::ValidatePrivacyParams(context.privacy);
  if (context.privacy.delta <= 0.0) {
    return Status::InvalidArgument(
        "private frank-wolfe requires delta > 0");
  }
  const convex::Domain& domain = *query.domain;
  std::vector<convex::Vec> vertices =
      VertexSet(domain, options_.sphere_net_size);

  // Per-step selection budget from strong composition. The score of
  // vertex s at iterate theta is -<grad l_D(theta), s>; changing one
  // record moves the empirical gradient by at most 2L/n in L2, hence each
  // score by at most 2 L diam / n.
  dp::PrivacyParams per_step =
      dp::PerRoundBudget(context.privacy, options_.steps);
  const double sensitivity = 2.0 * query.loss->lipschitz() *
                             domain.Diameter() /
                             static_cast<double>(dataset.n());

  convex::DatasetObjective objective(query.loss, &dataset);
  convex::Vec theta = domain.Center();
  for (int t = 0; t < options_.steps; ++t) {
    convex::Vec grad = objective.Gradient(theta);
    std::vector<double> scores(vertices.size());
    for (size_t v = 0; v < vertices.size(); ++v) {
      scores[v] = -convex::Dot(grad, vertices[v]);
    }
    int chosen = dp::ExponentialMechanism(scores, sensitivity,
                                          per_step.epsilon, rng);
    double gamma = 2.0 / (t + 2.0);
    for (int j = 0; j < domain.dim(); ++j) {
      theta[j] = (1.0 - gamma) * theta[j] + gamma * vertices[chosen][j];
    }
  }
  domain.Project(&theta);
  return theta;
}

}  // namespace erm
}  // namespace pmw
