// Private Frank-Wolfe (Talwar-Thakurta-Zhang style): each iteration picks
// the domain vertex minimizing the noisy linear objective. For polytope
// domains with few vertices (intervals, simplices, boxes) the per-step
// selection is an exponential mechanism over the vertex set and the total
// error is nearly dimension-free — a complementary oracle route that the
// paper's framework can plug in as A' (Section 3's oracle is a black box).
// Over the L2 ball the LMO is solved on a vertex net of the sphere.

#ifndef PMWCM_ERM_PRIVATE_FRANK_WOLFE_ORACLE_H_
#define PMWCM_ERM_PRIVATE_FRANK_WOLFE_ORACLE_H_

#include "erm/oracle.h"

namespace pmw {
namespace erm {

struct PrivateFrankWolfeOptions {
  /// Frank-Wolfe iterations.
  int steps = 48;
  /// Sphere-net size used when the domain is an L2 ball (data-independent,
  /// fixed seed).
  int sphere_net_size = 128;
};

class PrivateFrankWolfeOracle : public Oracle {
 public:
  explicit PrivateFrankWolfeOracle(PrivateFrankWolfeOptions options = {});

  /// Requires delta > 0 (per-step budget by strong composition).
  Result<convex::Vec> Solve(const convex::CmQuery& query,
                            const data::Dataset& dataset,
                            const OracleContext& context, Rng* rng) override;

  std::string name() const override { return "private-frank-wolfe"; }

 private:
  PrivateFrankWolfeOptions options_;
};

}  // namespace erm
}  // namespace pmw

#endif  // PMWCM_ERM_PRIVATE_FRANK_WOLFE_ORACLE_H_
