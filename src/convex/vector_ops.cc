#include "convex/vector_ops.h"

#include <cmath>
#include <cstdio>
#include <string>

#include "common/check.h"

namespace pmw {
namespace convex {

Vec Zeros(int d) {
  PMW_CHECK_GE(d, 0);
  return Vec(d, 0.0);
}

double Dot(const Vec& a, const Vec& b) {
  PMW_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double Norm2(const Vec& a) { return std::sqrt(Dot(a, a)); }

double Dist2(const Vec& a, const Vec& b) {
  PMW_CHECK_EQ(a.size(), b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double diff = a[i] - b[i];
    acc += diff * diff;
  }
  return std::sqrt(acc);
}

Vec Add(const Vec& a, const Vec& b) {
  PMW_CHECK_EQ(a.size(), b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec Sub(const Vec& a, const Vec& b) {
  PMW_CHECK_EQ(a.size(), b.size());
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec Scaled(const Vec& a, double c) {
  Vec out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = c * a[i];
  return out;
}

void AddScaledInPlace(Vec* a, const Vec& b, double c) {
  PMW_CHECK(a != nullptr);
  PMW_CHECK_EQ(a->size(), b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] += c * b[i];
}

void ScaleInPlace(Vec* a, double c) {
  PMW_CHECK(a != nullptr);
  for (double& x : *a) x *= c;
}

std::string ToString(const Vec& a) {
  std::string out = "(";
  char buf[32];
  for (size_t i = 0; i < a.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.4f", a[i]);
    out += buf;
    if (i + 1 < a.size()) out += ", ";
  }
  out += ")";
  return out;
}

}  // namespace convex
}  // namespace pmw
