// Dispatching solver: golden-section for 1-D intervals (the linear-query
// reduction needs essentially exact inner argmins), projected gradient
// descent everywhere else. This is the solver the PMW core uses by default.

#ifndef PMWCM_CONVEX_AUTO_SOLVER_H_
#define PMWCM_CONVEX_AUTO_SOLVER_H_

#include "convex/golden_section.h"
#include "convex/gradient_descent.h"
#include "convex/solver.h"

namespace pmw {
namespace convex {

class AutoSolver : public Solver {
 public:
  explicit AutoSolver(SolverOptions options = SolverOptions());

  SolverResult Minimize(const Objective& objective, const Domain& domain,
                        const Vec* init = nullptr) const override;

  std::string name() const override { return "auto"; }

 private:
  GoldenSectionSolver golden_;
  GradientDescentSolver descent_;
};

}  // namespace convex
}  // namespace pmw

#endif  // PMWCM_CONVEX_AUTO_SOLVER_H_
