#include "convex/empirical_loss.h"

#include <map>

#include "common/check.h"

namespace pmw {
namespace convex {

HistogramObjective::HistogramObjective(const LossFunction* loss,
                                       const data::Universe* universe,
                                       const data::Histogram* histogram)
    : loss_(loss), universe_(universe), histogram_(histogram) {
  PMW_CHECK(loss != nullptr);
  PMW_CHECK(universe != nullptr);
  PMW_CHECK(histogram != nullptr);
  PMW_CHECK_EQ(universe->size(), histogram->size());
}

double HistogramObjective::Value(const Vec& theta) const {
  double acc = 0.0;
  for (int i = 0; i < universe_->size(); ++i) {
    double mass = (*histogram_)[i];
    if (mass > 0.0) acc += mass * loss_->Value(theta, universe_->row(i));
  }
  return acc;
}

Vec HistogramObjective::Gradient(const Vec& theta) const {
  Vec grad = Zeros(loss_->dim());
  for (int i = 0; i < universe_->size(); ++i) {
    double mass = (*histogram_)[i];
    if (mass > 0.0) {
      loss_->AddGradient(theta, universe_->row(i), mass, &grad);
    }
  }
  return grad;
}

SupportObjective::SupportObjective(const LossFunction* loss,
                                   const data::Universe* universe,
                                   const data::HistogramSupport* support)
    : loss_(loss), universe_(universe), support_(support) {
  PMW_CHECK(loss != nullptr);
  PMW_CHECK(universe != nullptr);
  PMW_CHECK(support != nullptr);
}

double SupportObjective::Value(const Vec& theta) const {
  double acc = 0.0;
  // A loss that claims the batch path must produce the same bits as the
  // per-row loop below (loss_function.h), so the dispatch never changes
  // the objective value, only its cost.
  if (loss_->BatchValue(theta, *universe_, support_->data(), support_->size(),
                        &acc)) {
    return acc;
  }
  for (const auto& [index, mass] : *support_) {
    acc += mass * loss_->Value(theta, universe_->row(index));
  }
  return acc;
}

Vec SupportObjective::Gradient(const Vec& theta) const {
  Vec grad = Zeros(loss_->dim());
  if (loss_->BatchAddGradient(theta, *universe_, support_->data(),
                              support_->size(), &grad)) {
    return grad;
  }
  for (const auto& [index, mass] : *support_) {
    loss_->AddGradient(theta, universe_->row(index), mass, &grad);
  }
  return grad;
}

DatasetObjective::DatasetObjective(const LossFunction* loss,
                                   const data::Dataset* dataset)
    : loss_(loss), dataset_(dataset) {
  PMW_CHECK(loss != nullptr);
  PMW_CHECK(dataset != nullptr);
  std::map<int, int> counts;
  for (int i = 0; i < dataset->n(); ++i) counts[dataset->index(i)] += 1;
  double inv_n = 1.0 / static_cast<double>(dataset->n());
  weighted_rows_.reserve(counts.size());
  for (const auto& [index, count] : counts) {
    weighted_rows_.emplace_back(index, count * inv_n);
  }
}

double DatasetObjective::Value(const Vec& theta) const {
  double acc = 0.0;
  for (const auto& [index, weight] : weighted_rows_) {
    acc += weight * loss_->Value(theta, dataset_->universe().row(index));
  }
  return acc;
}

Vec DatasetObjective::Gradient(const Vec& theta) const {
  Vec grad = Zeros(loss_->dim());
  for (const auto& [index, weight] : weighted_rows_) {
    loss_->AddGradient(theta, dataset_->universe().row(index), weight, &grad);
  }
  return grad;
}

PerturbedObjective::PerturbedObjective(const Objective* base, Vec linear_term,
                                       double quadratic_mu,
                                       Vec quadratic_center)
    : base_(base),
      linear_term_(std::move(linear_term)),
      quadratic_mu_(quadratic_mu),
      quadratic_center_(std::move(quadratic_center)) {
  PMW_CHECK(base != nullptr);
  PMW_CHECK_EQ(static_cast<int>(linear_term_.size()), base->dim());
  PMW_CHECK_EQ(static_cast<int>(quadratic_center_.size()), base->dim());
  PMW_CHECK_GE(quadratic_mu_, 0.0);
}

double PerturbedObjective::Value(const Vec& theta) const {
  double value = base_->Value(theta) + Dot(linear_term_, theta);
  if (quadratic_mu_ > 0.0) {
    double dist = Dist2(theta, quadratic_center_);
    value += 0.5 * quadratic_mu_ * dist * dist;
  }
  return value;
}

Vec PerturbedObjective::Gradient(const Vec& theta) const {
  Vec grad = base_->Gradient(theta);
  for (size_t i = 0; i < grad.size(); ++i) {
    grad[i] += linear_term_[i];
    if (quadratic_mu_ > 0.0) {
      grad[i] += quadratic_mu_ * (theta[i] - quadratic_center_[i]);
    }
  }
  return grad;
}

}  // namespace convex
}  // namespace pmw
