#include "convex/gradient_descent.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pmw {
namespace convex {

GradientDescentSolver::GradientDescentSolver(SolverOptions options)
    : options_(options) {
  PMW_CHECK_GE(options_.max_iters, 1);
}

SolverResult GradientDescentSolver::Minimize(const Objective& objective,
                                             const Domain& domain,
                                             const Vec* init) const {
  PMW_CHECK_EQ(objective.dim(), domain.dim());
  Vec theta = (init != nullptr) ? *init : domain.Center();
  PMW_CHECK_EQ(static_cast<int>(theta.size()), domain.dim());
  domain.Project(&theta);

  double value = objective.Value(theta);
  Vec best_theta = theta;
  double best_value = value;
  double step = 1.0;
  int stall = 0;
  int iter = 0;
  const double diameter = std::max(domain.Diameter(), 1e-12);

  for (; iter < options_.max_iters; ++iter) {
    Vec grad = objective.Gradient(theta);
    double grad_norm = Norm2(grad);
    if (grad_norm < 1e-14) break;  // stationary (interior optimum)

    // Backtracking Armijo search along the projected-gradient path.
    bool accepted = false;
    double trial_step = std::min(step * 2.0, 1e6);
    for (int back = 0; back < 30; ++back) {
      Vec candidate = theta;
      AddScaledInPlace(&candidate, grad, -trial_step);
      domain.Project(&candidate);
      double candidate_value = objective.Value(candidate);
      double decrease = value - candidate_value;
      double moved = Dist2(candidate, theta);
      if (decrease >= 1e-4 * grad_norm * moved && moved > 0.0) {
        theta = std::move(candidate);
        value = candidate_value;
        step = trial_step;
        accepted = true;
        break;
      }
      trial_step *= 0.5;
    }
    if (!accepted) {
      // Non-smooth kink: take a diminishing subgradient step instead.
      double fallback = diameter / (grad_norm * std::sqrt(iter + 1.0));
      Vec candidate = theta;
      AddScaledInPlace(&candidate, grad, -fallback);
      domain.Project(&candidate);
      theta = std::move(candidate);
      value = objective.Value(theta);
    }
    double improvement = best_value - value;
    if (improvement > 0.0) {
      best_value = value;
      best_theta = theta;
    }
    if (improvement > options_.tol * (std::abs(best_value) + 1e-12)) {
      stall = 0;
    } else {
      ++stall;
      if (stall >= options_.patience) break;
    }
  }

  SolverResult result;
  result.theta = std::move(best_theta);
  result.value = best_value;
  result.iterations = iter;
  result.converged = iter < options_.max_iters;
  return result;
}

SubgradientSolver::SubgradientSolver(SolverOptions options)
    : options_(options) {
  PMW_CHECK_GE(options_.max_iters, 1);
}

SolverResult SubgradientSolver::Minimize(const Objective& objective,
                                         const Domain& domain,
                                         const Vec* init) const {
  PMW_CHECK_EQ(objective.dim(), domain.dim());
  Vec theta = (init != nullptr) ? *init : domain.Center();
  domain.Project(&theta);

  const double diameter = std::max(domain.Diameter(), 1e-12);
  const double sigma = options_.strong_convexity;
  Vec average = theta;
  double average_weight = 1.0;
  Vec best_theta = theta;
  double best_value = objective.Value(theta);

  int iter = 0;
  for (; iter < options_.max_iters; ++iter) {
    Vec grad = objective.Gradient(theta);
    double grad_norm = Norm2(grad);
    if (grad_norm < 1e-14) break;
    double step;
    if (sigma > 0.0) {
      step = 2.0 / (sigma * (iter + 2.0));
    } else {
      step = diameter / (grad_norm * std::sqrt(iter + 1.0));
    }
    AddScaledInPlace(&theta, grad, -step);
    domain.Project(&theta);

    // Weighted running average (weight t+1 favours later iterates).
    double w = iter + 2.0;
    for (size_t i = 0; i < average.size(); ++i) {
      average[i] = (average[i] * average_weight + theta[i] * w) /
                   (average_weight + w);
    }
    average_weight += w;

    if ((iter + 1) % 16 == 0 || iter + 1 == options_.max_iters) {
      double avg_value = objective.Value(average);
      if (avg_value < best_value) {
        best_value = avg_value;
        best_theta = average;
      }
      double cur_value = objective.Value(theta);
      if (cur_value < best_value) {
        best_value = cur_value;
        best_theta = theta;
      }
    }
  }

  SolverResult result;
  result.theta = std::move(best_theta);
  result.value = best_value;
  result.iterations = iter;
  result.converged = true;
  return result;
}

}  // namespace convex
}  // namespace pmw
