// Projected (sub)gradient descent with Armijo backtracking line search and a
// diminishing-step fallback. The default workhorse solver: exact enough for
// smooth losses (logistic, squared) via line search, and robust for
// non-smooth losses (hinge) via the subgradient fallback plus best-iterate
// tracking.

#ifndef PMWCM_CONVEX_GRADIENT_DESCENT_H_
#define PMWCM_CONVEX_GRADIENT_DESCENT_H_

#include "convex/solver.h"

namespace pmw {
namespace convex {

class GradientDescentSolver : public Solver {
 public:
  explicit GradientDescentSolver(SolverOptions options = SolverOptions());

  SolverResult Minimize(const Objective& objective, const Domain& domain,
                        const Vec* init = nullptr) const override;

  std::string name() const override { return "projected-gd"; }

 private:
  SolverOptions options_;
};

/// Plain projected subgradient descent with Polyak-style averaging and
/// diminishing steps; slower but assumption-free. Kept as a cross-check
/// solver in tests and as the inner loop of some oracles.
class SubgradientSolver : public Solver {
 public:
  explicit SubgradientSolver(SolverOptions options = SolverOptions());

  SolverResult Minimize(const Objective& objective, const Domain& domain,
                        const Vec* init = nullptr) const override;

  std::string name() const override { return "subgradient"; }

 private:
  SolverOptions options_;
};

}  // namespace convex
}  // namespace pmw

#endif  // PMWCM_CONVEX_GRADIENT_DESCENT_H_
