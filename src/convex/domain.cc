#include "convex/domain.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace pmw {
namespace convex {

L2Ball::L2Ball(int dim, double radius) : center_(Zeros(dim)), radius_(radius) {
  PMW_CHECK_GE(dim, 1);
  PMW_CHECK_GT(radius, 0.0);
}

L2Ball::L2Ball(Vec center, double radius)
    : center_(std::move(center)), radius_(radius) {
  PMW_CHECK(!center_.empty());
  PMW_CHECK_GT(radius, 0.0);
}

void L2Ball::Project(Vec* theta) const {
  PMW_CHECK(theta != nullptr);
  PMW_CHECK_EQ(theta->size(), center_.size());
  double dist = Dist2(*theta, center_);
  if (dist <= radius_) return;
  double scale = radius_ / dist;
  for (size_t i = 0; i < theta->size(); ++i) {
    (*theta)[i] = center_[i] + scale * ((*theta)[i] - center_[i]);
  }
}

bool L2Ball::Contains(const Vec& theta, double tol) const {
  PMW_CHECK_EQ(theta.size(), center_.size());
  return Dist2(theta, center_) <= radius_ + tol;
}

std::string L2Ball::name() const {
  return "l2ball(d=" + std::to_string(dim()) + ")";
}

Box::Box(Vec lo, Vec hi) : lo_(std::move(lo)), hi_(std::move(hi)) {
  PMW_CHECK_EQ(lo_.size(), hi_.size());
  PMW_CHECK(!lo_.empty());
  for (size_t i = 0; i < lo_.size(); ++i) PMW_CHECK_LE(lo_[i], hi_[i]);
}

void Box::Project(Vec* theta) const {
  PMW_CHECK(theta != nullptr);
  PMW_CHECK_EQ(theta->size(), lo_.size());
  for (size_t i = 0; i < lo_.size(); ++i) {
    (*theta)[i] = Clamp((*theta)[i], lo_[i], hi_[i]);
  }
}

bool Box::Contains(const Vec& theta, double tol) const {
  PMW_CHECK_EQ(theta.size(), lo_.size());
  for (size_t i = 0; i < lo_.size(); ++i) {
    if (theta[i] < lo_[i] - tol || theta[i] > hi_[i] + tol) return false;
  }
  return true;
}

Vec Box::Center() const {
  Vec c(lo_.size());
  for (size_t i = 0; i < lo_.size(); ++i) c[i] = 0.5 * (lo_[i] + hi_[i]);
  return c;
}

double Box::Diameter() const {
  double acc = 0.0;
  for (size_t i = 0; i < lo_.size(); ++i) acc += Sq(hi_[i] - lo_[i]);
  return std::sqrt(acc);
}

Interval::Interval(double lo, double hi) : lo_(lo), hi_(hi) {
  PMW_CHECK_LT(lo, hi);
}

void Interval::Project(Vec* theta) const {
  PMW_CHECK(theta != nullptr);
  PMW_CHECK_EQ(theta->size(), 1u);
  (*theta)[0] = Clamp((*theta)[0], lo_, hi_);
}

bool Interval::Contains(const Vec& theta, double tol) const {
  PMW_CHECK_EQ(theta.size(), 1u);
  return theta[0] >= lo_ - tol && theta[0] <= hi_ + tol;
}

Simplex::Simplex(int dim) : dim_(dim) { PMW_CHECK_GE(dim, 1); }

void Simplex::Project(Vec* theta) const {
  PMW_CHECK(theta != nullptr);
  PMW_CHECK_EQ(static_cast<int>(theta->size()), dim_);
  // Sort-based Euclidean projection onto {x >= 0, sum x = 1}.
  Vec sorted = *theta;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  double cumulative = 0.0;
  double tau = 0.0;
  int rho = 0;
  for (int i = 0; i < dim_; ++i) {
    cumulative += sorted[i];
    double candidate = (cumulative - 1.0) / static_cast<double>(i + 1);
    if (sorted[i] - candidate > 0.0) {
      rho = i + 1;
      tau = candidate;
    }
  }
  PMW_CHECK_GE(rho, 1);
  for (int i = 0; i < dim_; ++i) {
    (*theta)[i] = std::max((*theta)[i] - tau, 0.0);
  }
}

bool Simplex::Contains(const Vec& theta, double tol) const {
  PMW_CHECK_EQ(static_cast<int>(theta.size()), dim_);
  double sum = 0.0;
  for (double x : theta) {
    if (x < -tol) return false;
    sum += x;
  }
  return std::abs(sum - 1.0) <= tol;
}

Vec Simplex::Center() const { return Vec(dim_, 1.0 / dim_); }

double Simplex::Diameter() const { return std::sqrt(2.0); }

}  // namespace convex
}  // namespace pmw
