// Convex loss functions l(theta; x) defining CM queries (Section 2.2).
//
// A LossFunction evaluates the per-record loss and its (sub)gradient with
// respect to theta. Metadata (Lipschitz constant, strong convexity modulus)
// feeds the paper's restrictions in Section 1.1:
//   Lipschitz:        ||grad l_x(theta)||_2 <= lipschitz() for all theta, x
//   sigma-strongly convex: l(theta';x) >= l(theta;x) + <grad, theta'-theta>
//                          + (sigma/2)||theta'-theta||^2.

#ifndef PMWCM_CONVEX_LOSS_FUNCTION_H_
#define PMWCM_CONVEX_LOSS_FUNCTION_H_

#include <cstddef>
#include <string>
#include <utility>

#include "convex/vector_ops.h"
#include "data/universe.h"

namespace pmw {
namespace convex {

/// Interface for a convex loss l : Theta x X -> R, differentiable in theta
/// (or admitting a subgradient, which Gradient may return; the paper's
/// Section 1.1 notes this suffices everywhere).
class LossFunction {
 public:
  virtual ~LossFunction() = default;

  /// Dimension of theta.
  virtual int dim() const = 0;

  /// l(theta; x).
  virtual double Value(const Vec& theta, const data::Row& x) const = 0;

  /// *grad += weight * grad_theta l(theta; x). Accumulating lets empirical
  /// gradients over histograms avoid temporary allocations.
  virtual void AddGradient(const Vec& theta, const data::Row& x, double weight,
                           Vec* grad) const = 0;

  /// An upper bound on ||grad l_x(theta)||_2 over the domain and universe.
  virtual double lipschitz() const = 0;

  /// Strong convexity modulus sigma (0 for merely convex losses).
  virtual double strong_convexity() const { return 0.0; }

  /// True when the loss is a generalized linear model
  /// l(theta; x) = link(<theta, x.features>, x.label) (paper Section 4.2.2).
  virtual bool is_generalized_linear() const { return false; }

  virtual std::string name() const = 0;

  /// Optional batched fast path over weighted universe rows: when a loss
  /// can evaluate sum_e mass_e * Value(theta, universe.row(index_e)) —
  /// accumulating the terms IN ENTRY ORDER, each term computed with the
  /// same IEEE operation sequence as the per-row loop — it may claim the
  /// whole sweep here and return true. Implementations MUST be bitwise
  /// identical to the per-row loop (the serving transcripts depend on
  /// it); returning false (the default) falls back to that loop. The
  /// margin losses claim hypercube universes and evaluate from index
  /// bits with AVX2 (losses/margin_kernels.h).
  virtual bool BatchValue(const Vec& theta, const data::Universe& universe,
                          const std::pair<int, double>* entries, size_t count,
                          double* acc) const {
    (void)theta;
    (void)universe;
    (void)entries;
    (void)count;
    (void)acc;
    return false;
  }

  /// Batched counterpart of AddGradient over weighted rows, with the same
  /// bitwise-identity contract as BatchValue: entry-order accumulation
  /// into *grad, each entry's contribution computed with the scalar
  /// path's operation sequence.
  virtual bool BatchAddGradient(const Vec& theta,
                                const data::Universe& universe,
                                const std::pair<int, double>* entries,
                                size_t count, Vec* grad) const {
    (void)theta;
    (void)universe;
    (void)entries;
    (void)count;
    (void)grad;
    return false;
  }

  /// Convenience non-accumulating gradient.
  Vec Gradient(const Vec& theta, const data::Row& x) const {
    Vec g = Zeros(dim());
    AddGradient(theta, x, 1.0, &g);
    return g;
  }
};

}  // namespace convex
}  // namespace pmw

#endif  // PMWCM_CONVEX_LOSS_FUNCTION_H_
