// Convex loss functions l(theta; x) defining CM queries (Section 2.2).
//
// A LossFunction evaluates the per-record loss and its (sub)gradient with
// respect to theta. Metadata (Lipschitz constant, strong convexity modulus)
// feeds the paper's restrictions in Section 1.1:
//   Lipschitz:        ||grad l_x(theta)||_2 <= lipschitz() for all theta, x
//   sigma-strongly convex: l(theta';x) >= l(theta;x) + <grad, theta'-theta>
//                          + (sigma/2)||theta'-theta||^2.

#ifndef PMWCM_CONVEX_LOSS_FUNCTION_H_
#define PMWCM_CONVEX_LOSS_FUNCTION_H_

#include <string>

#include "convex/vector_ops.h"
#include "data/universe.h"

namespace pmw {
namespace convex {

/// Interface for a convex loss l : Theta x X -> R, differentiable in theta
/// (or admitting a subgradient, which Gradient may return; the paper's
/// Section 1.1 notes this suffices everywhere).
class LossFunction {
 public:
  virtual ~LossFunction() = default;

  /// Dimension of theta.
  virtual int dim() const = 0;

  /// l(theta; x).
  virtual double Value(const Vec& theta, const data::Row& x) const = 0;

  /// *grad += weight * grad_theta l(theta; x). Accumulating lets empirical
  /// gradients over histograms avoid temporary allocations.
  virtual void AddGradient(const Vec& theta, const data::Row& x, double weight,
                           Vec* grad) const = 0;

  /// An upper bound on ||grad l_x(theta)||_2 over the domain and universe.
  virtual double lipschitz() const = 0;

  /// Strong convexity modulus sigma (0 for merely convex losses).
  virtual double strong_convexity() const { return 0.0; }

  /// True when the loss is a generalized linear model
  /// l(theta; x) = link(<theta, x.features>, x.label) (paper Section 4.2.2).
  virtual bool is_generalized_linear() const { return false; }

  virtual std::string name() const = 0;

  /// Convenience non-accumulating gradient.
  Vec Gradient(const Vec& theta, const data::Row& x) const {
    Vec g = Zeros(dim());
    AddGradient(theta, x, 1.0, &g);
    return g;
  }
};

}  // namespace convex
}  // namespace pmw

#endif  // PMWCM_CONVEX_LOSS_FUNCTION_H_
