// A convex-minimization (CM) query: a loss paired with its domain
// (paper Section 2.2). The answer to q_l on a dataset/histogram D is
// argmin_{theta in Theta} l_D(theta).

#ifndef PMWCM_CONVEX_CM_QUERY_H_
#define PMWCM_CONVEX_CM_QUERY_H_

#include <string>

#include "convex/domain.h"
#include "convex/loss_function.h"

namespace pmw {
namespace convex {

/// Non-owning pairing of a loss and its constraint set. The pointed-to
/// objects must outlive the query (families in src/losses own them).
struct CmQuery {
  const LossFunction* loss = nullptr;
  const Domain* domain = nullptr;
  std::string label;
};

/// An upper bound on the paper's scaling parameter
///   S >= max_{x, theta, theta'} |<theta - theta', grad l_x(theta)>|,
/// via Cauchy-Schwarz: diameter(Theta) * Lipschitz(l). For the paper's
/// canonical setting (unit ball, 1-Lipschitz) this gives S = 2.
double ScaleBound(const CmQuery& query);

}  // namespace convex
}  // namespace pmw

#endif  // PMWCM_CONVEX_CM_QUERY_H_
