// Small dense vector operations. Model parameters theta live in R^d with
// small d (the paper's experiments never need BLAS-scale d), so plain
// std::vector<double> with free functions keeps the code transparent.

#ifndef PMWCM_CONVEX_VECTOR_OPS_H_
#define PMWCM_CONVEX_VECTOR_OPS_H_

#include <string>
#include <vector>

namespace pmw {
namespace convex {

using Vec = std::vector<double>;

/// The zero vector of dimension d.
Vec Zeros(int d);

/// <a, b>. Requires equal sizes.
double Dot(const Vec& a, const Vec& b);

/// ||a||_2.
double Norm2(const Vec& a);

/// ||a - b||_2.
double Dist2(const Vec& a, const Vec& b);

/// a + b.
Vec Add(const Vec& a, const Vec& b);

/// a - b.
Vec Sub(const Vec& a, const Vec& b);

/// c * a.
Vec Scaled(const Vec& a, double c);

/// *a += c * b (axpy).
void AddScaledInPlace(Vec* a, const Vec& b, double c);

/// *a *= c.
void ScaleInPlace(Vec* a, double c);

/// Renders "(a_0, a_1, ...)" with 4 decimals for diagnostics.
std::string ToString(const Vec& a);

}  // namespace convex
}  // namespace pmw

#endif  // PMWCM_CONVEX_VECTOR_OPS_H_
