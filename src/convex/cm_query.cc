#include "convex/cm_query.h"

#include "common/check.h"

namespace pmw {
namespace convex {

double ScaleBound(const CmQuery& query) {
  PMW_CHECK(query.loss != nullptr);
  PMW_CHECK(query.domain != nullptr);
  PMW_CHECK_EQ(query.loss->dim(), query.domain->dim());
  return query.domain->Diameter() * query.loss->lipschitz();
}

}  // namespace convex
}  // namespace pmw
