#include "convex/frank_wolfe.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace pmw {
namespace convex {

Vec LinearMinimizer(const Domain& domain, const Vec& direction) {
  PMW_CHECK_EQ(static_cast<int>(direction.size()), domain.dim());
  if (const auto* ball = dynamic_cast<const L2Ball*>(&domain)) {
    // argmin over the ball: centre - radius * direction / ||direction||.
    double norm = Norm2(direction);
    Vec s = ball->Center();
    if (norm > 1e-14) {
      AddScaledInPlace(&s, direction, -ball->radius() / norm);
    }
    return s;
  }
  if (const auto* interval = dynamic_cast<const Interval*>(&domain)) {
    return {direction[0] >= 0.0 ? interval->lo() : interval->hi()};
  }
  if (dynamic_cast<const Simplex*>(&domain) != nullptr) {
    // Vertex with the smallest direction coordinate.
    int best = 0;
    for (int i = 1; i < domain.dim(); ++i) {
      if (direction[i] < direction[best]) best = i;
    }
    Vec s = Zeros(domain.dim());
    s[best] = 1.0;
    return s;
  }
  if (const auto* box = dynamic_cast<const Box*>(&domain)) {
    // Per-coordinate: lo when direction >= 0, hi otherwise. Recover the
    // bounds by projecting +-inf-ish points.
    Vec lo(domain.dim(), -1e30);
    Vec hi(domain.dim(), 1e30);
    box->Project(&lo);
    box->Project(&hi);
    Vec s(domain.dim());
    for (int i = 0; i < domain.dim(); ++i) {
      s[i] = direction[i] >= 0.0 ? lo[i] : hi[i];
    }
    return s;
  }
  PMW_CHECK_MSG(false,
                "LinearMinimizer: unsupported domain " << domain.name());
  return {};
}

FrankWolfeSolver::FrankWolfeSolver(SolverOptions options)
    : options_(options) {
  PMW_CHECK_GE(options_.max_iters, 1);
}

SolverResult FrankWolfeSolver::Minimize(const Objective& objective,
                                        const Domain& domain,
                                        const Vec* init) const {
  PMW_CHECK_EQ(objective.dim(), domain.dim());
  Vec theta = (init != nullptr) ? *init : domain.Center();
  domain.Project(&theta);

  Vec best_theta = theta;
  double best_value = objective.Value(theta);
  int iter = 0;
  for (; iter < options_.max_iters; ++iter) {
    Vec grad = objective.Gradient(theta);
    Vec s = LinearMinimizer(domain, grad);
    // Duality gap <grad, theta - s> certifies optimality.
    Vec direction = Sub(s, theta);
    double gap = -Dot(grad, direction);
    if (gap <= options_.tol * (std::abs(best_value) + 1.0)) {
      ++iter;
      break;
    }
    double gamma = 2.0 / (iter + 2.0);
    AddScaledInPlace(&theta, direction, gamma);
    double value = objective.Value(theta);
    if (value < best_value) {
      best_value = value;
      best_theta = theta;
    }
  }

  SolverResult result;
  result.theta = std::move(best_theta);
  result.value = best_value;
  result.iterations = iter;
  result.converged = true;
  return result;
}

}  // namespace convex
}  // namespace pmw
