// Golden-section search: exact minimization of a one-dimensional convex
// objective over an Interval. Used by the linear-query-as-CM reduction,
// where the inner argmin must be essentially exact.

#ifndef PMWCM_CONVEX_GOLDEN_SECTION_H_
#define PMWCM_CONVEX_GOLDEN_SECTION_H_

#include "convex/solver.h"

namespace pmw {
namespace convex {

class GoldenSectionSolver : public Solver {
 public:
  explicit GoldenSectionSolver(SolverOptions options = SolverOptions());

  /// Requires a 1-D objective and an Interval domain.
  SolverResult Minimize(const Objective& objective, const Domain& domain,
                        const Vec* init = nullptr) const override;

  std::string name() const override { return "golden-section"; }

 private:
  SolverOptions options_;
};

}  // namespace convex
}  // namespace pmw

#endif  // PMWCM_CONVEX_GOLDEN_SECTION_H_
