// Solver interfaces for constrained convex minimization.
//
// The PMW algorithm (Figure 3) needs non-private argmins over the public
// hypothesis histogram and over the private dataset (inside the sensitivity-
// bounded error query); the single-query oracles in src/erm need them too.

#ifndef PMWCM_CONVEX_SOLVER_H_
#define PMWCM_CONVEX_SOLVER_H_

#include <string>

#include "convex/domain.h"
#include "convex/empirical_loss.h"

namespace pmw {
namespace convex {

/// Tuning knobs shared by all solvers.
struct SolverOptions {
  /// Hard iteration cap.
  int max_iters = 400;
  /// Converged when the objective improves by less than this (relatively)
  /// over `patience` consecutive iterations.
  double tol = 1e-10;
  int patience = 8;
  /// Strong-convexity modulus, if known, to enable 1/(sigma t) step sizes.
  double strong_convexity = 0.0;
};

/// Outcome of a minimization.
struct SolverResult {
  Vec theta;
  double value = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Interface: minimize `objective` over `domain`.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Minimizes from `init` (or the domain centre when nullptr).
  virtual SolverResult Minimize(const Objective& objective,
                                const Domain& domain,
                                const Vec* init = nullptr) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace convex
}  // namespace pmw

#endif  // PMWCM_CONVEX_SOLVER_H_
