#include "convex/auto_solver.h"

namespace pmw {
namespace convex {

AutoSolver::AutoSolver(SolverOptions options)
    : golden_(options), descent_(options) {}

SolverResult AutoSolver::Minimize(const Objective& objective,
                                  const Domain& domain,
                                  const Vec* init) const {
  if (objective.dim() == 1 &&
      dynamic_cast<const Interval*>(&domain) != nullptr) {
    return golden_.Minimize(objective, domain, init);
  }
  return descent_.Minimize(objective, domain, init);
}

}  // namespace convex
}  // namespace pmw
