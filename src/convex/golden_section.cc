#include "convex/golden_section.h"

#include <cmath>

#include "common/check.h"

namespace pmw {
namespace convex {

GoldenSectionSolver::GoldenSectionSolver(SolverOptions options)
    : options_(options) {}

SolverResult GoldenSectionSolver::Minimize(const Objective& objective,
                                           const Domain& domain,
                                           const Vec* /*init*/) const {
  PMW_CHECK_EQ(objective.dim(), 1);
  const auto* interval = dynamic_cast<const Interval*>(&domain);
  PMW_CHECK_MSG(interval != nullptr,
                "GoldenSectionSolver requires an Interval domain");

  const double inv_phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = interval->lo();
  double b = interval->hi();
  double c = b - inv_phi * (b - a);
  double d = a + inv_phi * (b - a);
  double fc = objective.Value({c});
  double fd = objective.Value({d});

  int iter = 0;
  // Stop when the bracket is tiny relative to the interval width.
  const double width_tol =
      std::max(options_.tol, 1e-13) * (interval->hi() - interval->lo());
  while (std::abs(b - a) > width_tol && iter < options_.max_iters) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - inv_phi * (b - a);
      fc = objective.Value({c});
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + inv_phi * (b - a);
      fd = objective.Value({d});
    }
    ++iter;
  }

  double mid = 0.5 * (a + b);
  SolverResult result;
  result.theta = {mid};
  result.value = objective.Value(result.theta);
  result.iterations = iter;
  result.converged = std::abs(b - a) <= width_tol;
  return result;
}

}  // namespace convex
}  // namespace pmw
