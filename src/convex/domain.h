// Convex constraint sets Theta with Euclidean projection.
//
// Every CM query carries a convex domain Theta (paper Section 2.2). The
// paper's applications use the unit L2 ball (d-boundedness, Section 1.1);
// the library also ships boxes, intervals, and the probability simplex for
// tests and the linear-query reduction.

#ifndef PMWCM_CONVEX_DOMAIN_H_
#define PMWCM_CONVEX_DOMAIN_H_

#include <memory>
#include <string>
#include <vector>

#include "convex/vector_ops.h"

namespace pmw {
namespace convex {

/// A closed convex subset of R^d supporting Euclidean projection.
class Domain {
 public:
  virtual ~Domain() = default;

  virtual int dim() const = 0;

  /// Projects *theta onto the set (Euclidean nearest point), in place.
  virtual void Project(Vec* theta) const = 0;

  /// True iff theta is in the set up to `tol`.
  virtual bool Contains(const Vec& theta, double tol = 1e-9) const = 0;

  /// An interior starting point for solvers.
  virtual Vec Center() const = 0;

  /// sup_{a, b in Theta} ||a - b||_2; enters the scale parameter S.
  virtual double Diameter() const = 0;

  virtual std::string name() const = 0;
};

/// {theta : ||theta - center||_2 <= radius}. The paper's canonical
/// d-bounded domain is L2Ball(d) = unit ball at the origin.
class L2Ball : public Domain {
 public:
  explicit L2Ball(int dim, double radius = 1.0);
  L2Ball(Vec center, double radius);

  int dim() const override { return static_cast<int>(center_.size()); }
  void Project(Vec* theta) const override;
  bool Contains(const Vec& theta, double tol) const override;
  Vec Center() const override { return center_; }
  double Diameter() const override { return 2.0 * radius_; }
  std::string name() const override;

  double radius() const { return radius_; }

 private:
  Vec center_;
  double radius_;
};

/// Axis-aligned box [lo_1, hi_1] x ... x [lo_d, hi_d].
class Box : public Domain {
 public:
  Box(Vec lo, Vec hi);

  int dim() const override { return static_cast<int>(lo_.size()); }
  void Project(Vec* theta) const override;
  bool Contains(const Vec& theta, double tol) const override;
  Vec Center() const override;
  double Diameter() const override;
  std::string name() const override { return "box"; }

 private:
  Vec lo_;
  Vec hi_;
};

/// A one-dimensional interval [lo, hi]; used by the linear-query-as-CM
/// reduction where Theta = [0, 1].
class Interval : public Domain {
 public:
  Interval(double lo, double hi);

  int dim() const override { return 1; }
  void Project(Vec* theta) const override;
  bool Contains(const Vec& theta, double tol) const override;
  Vec Center() const override { return {0.5 * (lo_ + hi_)}; }
  double Diameter() const override { return hi_ - lo_; }
  std::string name() const override { return "interval"; }

  double lo() const { return lo_; }
  double hi() const { return hi_; }

 private:
  double lo_;
  double hi_;
};

/// The probability simplex {theta >= 0, sum theta = 1}; projection by the
/// sorting algorithm of Held-Wolfe-Crowder.
class Simplex : public Domain {
 public:
  explicit Simplex(int dim);

  int dim() const override { return dim_; }
  void Project(Vec* theta) const override;
  bool Contains(const Vec& theta, double tol) const override;
  Vec Center() const override;
  double Diameter() const override;
  std::string name() const override { return "simplex"; }

 private:
  int dim_;
};

}  // namespace convex
}  // namespace pmw

#endif  // PMWCM_CONVEX_DOMAIN_H_
