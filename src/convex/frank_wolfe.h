// Frank-Wolfe (conditional gradient) solver. Projection-free: each step
// solves a linear minimization over the domain, which the shipped domains
// answer in closed form. Useful for smooth losses over the unit ball and as
// an independent cross-check of the projected-gradient solver.

#ifndef PMWCM_CONVEX_FRANK_WOLFE_H_
#define PMWCM_CONVEX_FRANK_WOLFE_H_

#include "convex/solver.h"

namespace pmw {
namespace convex {

/// argmin_{s in domain} <direction, s> for the shipped domain types.
/// PMW_CHECK-fails on domains without a closed-form linear minimizer.
Vec LinearMinimizer(const Domain& domain, const Vec& direction);

class FrankWolfeSolver : public Solver {
 public:
  explicit FrankWolfeSolver(SolverOptions options = SolverOptions());

  SolverResult Minimize(const Objective& objective, const Domain& domain,
                        const Vec* init = nullptr) const override;

  std::string name() const override { return "frank-wolfe"; }

 private:
  SolverOptions options_;
};

}  // namespace convex
}  // namespace pmw

#endif  // PMWCM_CONVEX_FRANK_WOLFE_H_
