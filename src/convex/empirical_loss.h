// Empirical objectives: the expected loss of a LossFunction over a dataset
// or a histogram, i.e. the functions l_D(theta) = sum_x D(x) l(theta; x)
// the paper minimizes (Section 2.2).

#ifndef PMWCM_CONVEX_EMPIRICAL_LOSS_H_
#define PMWCM_CONVEX_EMPIRICAL_LOSS_H_

#include "convex/loss_function.h"
#include "convex/vector_ops.h"
#include "data/dataset.h"
#include "data/histogram.h"

namespace pmw {
namespace convex {

/// A differentiable objective f : R^d -> R to be minimized over a Domain.
class Objective {
 public:
  virtual ~Objective() = default;
  virtual int dim() const = 0;
  virtual double Value(const Vec& theta) const = 0;
  virtual Vec Gradient(const Vec& theta) const = 0;
};

/// l_D(theta) where D is a histogram over a universe:
/// f(theta) = sum_x D(x) l(theta; x). Skips zero-mass rows, so its cost is
/// O(support size * d).
class HistogramObjective : public Objective {
 public:
  HistogramObjective(const LossFunction* loss, const data::Universe* universe,
                     const data::Histogram* histogram);

  int dim() const override { return loss_->dim(); }
  double Value(const Vec& theta) const override;
  Vec Gradient(const Vec& theta) const override;

 private:
  const LossFunction* loss_;
  const data::Universe* universe_;
  const data::Histogram* histogram_;
};

/// l_D(theta) over a precomputed histogram support. Sums the same
/// (mass, row) terms in the same order as HistogramObjective over the
/// histogram that produced the support, so the two agree bit-for-bit; this
/// variant just skips the dense zero-mass scan. The serving layer compacts
/// the hypothesis once per batch and evaluates every query through this.
class SupportObjective : public Objective {
 public:
  SupportObjective(const LossFunction* loss, const data::Universe* universe,
                   const data::HistogramSupport* support);

  int dim() const override { return loss_->dim(); }
  double Value(const Vec& theta) const override;
  Vec Gradient(const Vec& theta) const override;

 private:
  const LossFunction* loss_;
  const data::Universe* universe_;
  const data::HistogramSupport* support_;
};

/// l_D(theta) for a dataset: f(theta) = (1/n) sum_i l(theta; x_i). Evaluated
/// through per-universe-row counts, so repeated rows cost nothing extra.
class DatasetObjective : public Objective {
 public:
  DatasetObjective(const LossFunction* loss, const data::Dataset* dataset);

  int dim() const override { return loss_->dim(); }
  double Value(const Vec& theta) const override;
  Vec Gradient(const Vec& theta) const override;

 private:
  const LossFunction* loss_;
  const data::Dataset* dataset_;
  std::vector<std::pair<int, double>> weighted_rows_;  // (index, weight)
};

/// f(theta) + <b, theta> + (mu/2)||theta - center||^2; the decorated
/// objective used by objective perturbation and localization.
class PerturbedObjective : public Objective {
 public:
  PerturbedObjective(const Objective* base, Vec linear_term,
                     double quadratic_mu, Vec quadratic_center);

  int dim() const override { return base_->dim(); }
  double Value(const Vec& theta) const override;
  Vec Gradient(const Vec& theta) const override;

 private:
  const Objective* base_;
  Vec linear_term_;
  double quadratic_mu_;
  Vec quadratic_center_;
};

}  // namespace convex
}  // namespace pmw

#endif  // PMWCM_CONVEX_EMPIRICAL_LOSS_H_
