#include "api/codec.h"

#include <cstring>

namespace pmw {
namespace api {
namespace {

constexpr uint16_t kMagic = 0x4d50;  // "PM"

// Request field tags.
constexpr uint8_t kReqAnalystId = 1;
constexpr uint8_t kReqRequestId = 2;
constexpr uint8_t kReqDeadline = 3;
constexpr uint8_t kReqQueryName = 4;
// Batched names (one frame, many catalog names): appended within v1, so
// pre-batch decoders skip it under the unknown-field rule.
constexpr uint8_t kReqQueryNames = 5;

// Answer field tags.
constexpr uint8_t kAnsRequestId = 1;
constexpr uint8_t kAnsError = 2;
constexpr uint8_t kAnsMessage = 3;
constexpr uint8_t kAnsAnswer = 4;
constexpr uint8_t kAnsMeta = 5;

// Stats-request field tags.
constexpr uint8_t kStatsAnalystId = 1;
constexpr uint8_t kStatsRequestId = 2;

// Metrics-request field tags.
constexpr uint8_t kMetricsAnalystId = 1;
constexpr uint8_t kMetricsRequestId = 2;
constexpr uint8_t kMetricsFormat = 3;

// Trace-request field tags.
constexpr uint8_t kTraceAnalystId = 1;
constexpr uint8_t kTraceRequestId = 2;
constexpr uint8_t kTraceMinTotalUs = 3;
constexpr uint8_t kTraceMaxTraces = 4;

// Hello-request field tags.
constexpr uint8_t kHelloAnalystId = 1;
constexpr uint8_t kHelloRequestId = 2;
constexpr uint8_t kHelloAuthToken = 3;

// Shard-RPC field tags (internal combiner -> worker family).
constexpr uint8_t kRpcRequestId = 1;
constexpr uint8_t kRpcOp = 2;
constexpr uint8_t kRpcUpdateSeq = 3;
// Partition config: u32 domain_size | u32 num_shards | u32 group_lo |
// u32 group_hi, one 16-byte field.
constexpr uint8_t kRpcConfig = 4;
constexpr uint8_t kRpcEta = 5;
constexpr uint8_t kRpcGlobalMax = 6;
constexpr uint8_t kRpcTotal = 7;
// Snapshot range: u32 lo | u32 hi, one 8-byte field.
constexpr uint8_t kRpcSnapshotRange = 8;
constexpr uint8_t kRpcPayoff = 9;

// The v1 baseline serving-metadata layout; later same-version fields
// (the shard count) append after it and pre-shard decoders ignore the
// tail, exactly like unknown tagged fields.
constexpr size_t kMetaBytes = 8 + 1 + 1 + 8 + 8 + 8;
constexpr size_t kMetaShardsBytes = kMetaBytes + 4;
// Server-side timing split (queue_wait_us, serve_us), appended after the
// shard count within v1; pre-timing decoders ignore the tail.
constexpr size_t kMetaTimingBytes = kMetaShardsBytes + 8 + 8;
// Span breakdown (prepare_us, solve_us, mw_us, commit_us), appended
// after the timing split within v1; pre-span decoders ignore the tail.
constexpr size_t kMetaSpansBytes = kMetaTimingBytes + 8 + 8 + 8 + 8;

// --- little-endian scalar append/read helpers -----------------------------

template <typename T>
void AppendScalar(T value, std::string* out) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  for (size_t i = 0; i < sizeof(T) / 2; ++i) {
    std::swap(bytes[i], bytes[sizeof(T) - 1 - i]);
  }
#endif
  out->append(bytes, sizeof(T));
}

template <typename T>
T ReadScalar(const char* data) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, data, sizeof(T));
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  for (size_t i = 0; i < sizeof(T) / 2; ++i) {
    std::swap(bytes[i], bytes[sizeof(T) - 1 - i]);
  }
#endif
  T value;
  std::memcpy(&value, bytes, sizeof(T));
  return value;
}

void AppendField(uint8_t tag, std::string_view payload, std::string* out) {
  out->push_back(static_cast<char>(tag));
  AppendScalar<uint32_t>(static_cast<uint32_t>(payload.size()), out);
  out->append(payload.data(), payload.size());
}

template <typename T>
void AppendScalarField(uint8_t tag, T value, std::string* out) {
  std::string payload;
  AppendScalar(value, &payload);
  AppendField(tag, payload, out);
}

/// Opens a frame in *out: writes a zero length prefix + header, returns
/// the offset to patch the prefix at once the payload is complete.
/// `version` comes from the envelope being encoded, NOT the build: a
/// newer server must answer a v1 request with a v1 frame or the older
/// client cannot decode its own replies.
size_t BeginFrame(uint8_t msg_type, uint8_t version, std::string* out) {
  const size_t prefix_at = out->size();
  AppendScalar<uint32_t>(0, out);
  AppendScalar<uint16_t>(kMagic, out);
  out->push_back(static_cast<char>(version));
  out->push_back(static_cast<char>(msg_type));
  return prefix_at;
}

void EndFrame(size_t prefix_at, std::string* out) {
  const uint32_t payload_len =
      static_cast<uint32_t>(out->size() - prefix_at - 4);
  std::string prefix;
  AppendScalar(payload_len, &prefix);
  out->replace(prefix_at, 4, prefix);
}

// --- decode cursor --------------------------------------------------------

/// A bounds-checked reader over one frame's field region. Every Read*
/// returns false instead of walking past the end, which is what makes the
/// decoder total on adversarial input.
class FieldCursor {
 public:
  explicit FieldCursor(std::string_view fields) : fields_(fields) {}

  bool Done() const { return offset_ >= fields_.size(); }

  /// Reads the next field header + payload; false on truncation.
  bool Next(uint8_t* tag, std::string_view* payload) {
    if (fields_.size() - offset_ < 1 + 4) return false;
    *tag = static_cast<uint8_t>(fields_[offset_]);
    const uint32_t len = ReadScalar<uint32_t>(fields_.data() + offset_ + 1);
    offset_ += 5;
    if (fields_.size() - offset_ < len) return false;
    *payload = fields_.substr(offset_, len);
    offset_ += len;
    return true;
  }

 private:
  std::string_view fields_;
  size_t offset_ = 0;
};

template <typename T>
bool ReadExactScalar(std::string_view payload, T* value) {
  if (payload.size() != sizeof(T)) return false;
  *value = ReadScalar<T>(payload.data());
  return true;
}

Status Malformed(const std::string& detail) {
  return MakeStatus(ErrorCode::kMalformedRequest, "codec: " + detail);
}

/// Validates the fixed header shared by both message types; on success
/// *fields receives the field region.
Status OpenFrame(std::string_view frame, uint8_t expected_type,
                 std::string_view* fields) {
  if (frame.size() < 4) return Malformed("frame shorter than length prefix");
  const uint32_t payload_len = ReadScalar<uint32_t>(frame.data());
  if (payload_len > kMaxFramePayload) {
    return Malformed("length prefix exceeds kMaxFramePayload");
  }
  if (frame.size() != size_t{payload_len} + 4) {
    return Malformed("length prefix disagrees with frame size");
  }
  if (payload_len < 4) return Malformed("payload shorter than header");
  if (ReadScalar<uint16_t>(frame.data() + 4) != kMagic) {
    return Malformed("bad magic");
  }
  const uint8_t version = static_cast<uint8_t>(frame[6]);
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return MakeStatus(
        ErrorCode::kVersionMismatch,
        "codec: frame speaks protocol version " + std::to_string(version) +
            "; this endpoint speaks [" +
            std::to_string(kMinProtocolVersion) + ", " +
            std::to_string(kProtocolVersion) + "]");
  }
  if (static_cast<uint8_t>(frame[7]) != expected_type) {
    return Malformed("unexpected message type");
  }
  *fields = frame.substr(8);
  return Status::Ok();
}

}  // namespace

void EncodeRequest(const QueryRequest& request, std::string* out) {
  const size_t prefix_at = BeginFrame(kMsgTypeRequest, request.version, out);
  AppendField(kReqAnalystId, request.analyst_id, out);
  AppendScalarField(kReqRequestId, request.request_id, out);
  if (request.deadline_micros != 0) {
    AppendScalarField(kReqDeadline, request.deadline_micros, out);
  }
  AppendField(kReqQueryName, request.query_name, out);
  if (!request.query_names.empty()) {
    // Batched names: u32 count, then (u32 len | bytes) per name.
    std::string payload;
    AppendScalar<uint32_t>(
        static_cast<uint32_t>(request.query_names.size()), &payload);
    for (const std::string& name : request.query_names) {
      AppendScalar<uint32_t>(static_cast<uint32_t>(name.size()), &payload);
      payload.append(name);
    }
    AppendField(kReqQueryNames, payload, out);
  }
  EndFrame(prefix_at, out);
}

void EncodeStatsRequest(const StatsRequest& request, std::string* out) {
  const size_t prefix_at = BeginFrame(kMsgTypeStats, request.version, out);
  AppendField(kStatsAnalystId, request.analyst_id, out);
  AppendScalarField(kStatsRequestId, request.request_id, out);
  EndFrame(prefix_at, out);
}

void EncodeMetricsRequest(const MetricsRequest& request, std::string* out) {
  const size_t prefix_at =
      BeginFrame(kMsgTypeMetrics, request.version, out);
  AppendField(kMetricsAnalystId, request.analyst_id, out);
  AppendScalarField(kMetricsRequestId, request.request_id, out);
  AppendScalarField(kMetricsFormat, request.format, out);
  EndFrame(prefix_at, out);
}

void EncodeTraceRequest(const TraceRequest& request, std::string* out) {
  const size_t prefix_at = BeginFrame(kMsgTypeTrace, request.version, out);
  AppendField(kTraceAnalystId, request.analyst_id, out);
  AppendScalarField(kTraceRequestId, request.request_id, out);
  AppendScalarField(kTraceMinTotalUs, request.min_total_us, out);
  AppendScalarField(kTraceMaxTraces, request.max_traces, out);
  EndFrame(prefix_at, out);
}

void EncodeHelloRequest(const HelloRequest& request, std::string* out) {
  const size_t prefix_at = BeginFrame(kMsgTypeHello, request.version, out);
  AppendField(kHelloAnalystId, request.analyst_id, out);
  AppendScalarField(kHelloRequestId, request.request_id, out);
  AppendField(kHelloAuthToken, request.auth_token, out);
  EndFrame(prefix_at, out);
}

void EncodeShardRpcRequest(const ShardRpcRequest& request,
                           std::string* out) {
  const size_t prefix_at =
      BeginFrame(kMsgTypeShardRpc, request.version, out);
  AppendScalarField(kRpcRequestId, request.request_id, out);
  AppendScalarField(kRpcOp, static_cast<uint8_t>(request.op), out);
  AppendScalarField(kRpcUpdateSeq, request.update_seq, out);
  {
    std::string payload;
    AppendScalar<uint32_t>(request.domain_size, &payload);
    AppendScalar<uint32_t>(request.num_shards, &payload);
    AppendScalar<uint32_t>(request.group_lo, &payload);
    AppendScalar<uint32_t>(request.group_hi, &payload);
    AppendField(kRpcConfig, payload, out);
  }
  AppendScalarField(kRpcEta, request.eta, out);
  AppendScalarField(kRpcGlobalMax, request.global_max, out);
  AppendScalarField(kRpcTotal, request.total, out);
  {
    std::string payload;
    AppendScalar<uint32_t>(request.snapshot_lo, &payload);
    AppendScalar<uint32_t>(request.snapshot_hi, &payload);
    AppendField(kRpcSnapshotRange, payload, out);
  }
  if (!request.payoff.empty()) {
    std::string payload;
    payload.reserve(request.payoff.size() * sizeof(double));
    for (double value : request.payoff) AppendScalar(value, &payload);
    AppendField(kRpcPayoff, payload, out);
  }
  EndFrame(prefix_at, out);
}

void EncodeAnswer(const AnswerEnvelope& envelope, std::string* out) {
  const size_t prefix_at =
      BeginFrame(kMsgTypeAnswer, envelope.version, out);
  AppendScalarField(kAnsRequestId, envelope.request_id, out);
  AppendScalarField(kAnsError, static_cast<uint16_t>(envelope.error), out);
  if (!envelope.message.empty()) {
    AppendField(kAnsMessage, envelope.message, out);
  }
  if (!envelope.answer.empty()) {
    std::string payload;
    payload.reserve(envelope.answer.size() * sizeof(double));
    for (double coordinate : envelope.answer) {
      AppendScalar(coordinate, &payload);
    }
    AppendField(kAnsAnswer, payload, out);
  }
  {
    std::string payload;
    AppendScalar<uint64_t>(envelope.meta.epoch, &payload);
    payload.push_back(envelope.meta.hard_round ? 1 : 0);
    payload.push_back(envelope.meta.cache_hit ? 1 : 0);
    AppendScalar<int64_t>(envelope.meta.hard_rounds_remaining, &payload);
    AppendScalar<double>(envelope.meta.epsilon_spent, &payload);
    AppendScalar<double>(envelope.meta.delta_spent, &payload);
    AppendScalar<uint32_t>(envelope.meta.shards, &payload);
    AppendScalar<uint64_t>(envelope.meta.queue_wait_us, &payload);
    AppendScalar<uint64_t>(envelope.meta.serve_us, &payload);
    AppendScalar<uint64_t>(envelope.meta.prepare_us, &payload);
    AppendScalar<uint64_t>(envelope.meta.solve_us, &payload);
    AppendScalar<uint64_t>(envelope.meta.mw_us, &payload);
    AppendScalar<uint64_t>(envelope.meta.commit_us, &payload);
    AppendField(kAnsMeta, payload, out);
  }
  EndFrame(prefix_at, out);
}

FrameStatus ExtractFrame(std::string_view buffer, size_t* total_size) {
  if (buffer.size() < 4) return FrameStatus::kNeedMore;
  const uint32_t payload_len = ReadScalar<uint32_t>(buffer.data());
  if (payload_len > kMaxFramePayload) return FrameStatus::kMalformed;
  if (buffer.size() < size_t{payload_len} + 4) return FrameStatus::kNeedMore;
  *total_size = size_t{payload_len} + 4;
  return FrameStatus::kFrame;
}

uint8_t PeekMsgType(std::string_view frame) {
  if (frame.size() < 8) return 0;
  return static_cast<uint8_t>(frame[7]);
}

Result<QueryRequest> DecodeRequest(std::string_view frame) {
  std::string_view fields;
  Status header = OpenFrame(frame, kMsgTypeRequest, &fields);
  if (!header.ok()) return header;
  QueryRequest request;
  request.version = static_cast<uint8_t>(frame[6]);
  FieldCursor cursor(fields);
  while (!cursor.Done()) {
    uint8_t tag;
    std::string_view payload;
    if (!cursor.Next(&tag, &payload)) {
      return Malformed("truncated request field");
    }
    switch (tag) {
      case kReqAnalystId:
        request.analyst_id.assign(payload.data(), payload.size());
        break;
      case kReqRequestId:
        if (!ReadExactScalar(payload, &request.request_id)) {
          return Malformed("request_id is not a u64");
        }
        break;
      case kReqDeadline:
        if (!ReadExactScalar(payload, &request.deadline_micros)) {
          return Malformed("deadline_micros is not a u64");
        }
        break;
      case kReqQueryName:
        request.query_name.assign(payload.data(), payload.size());
        break;
      case kReqQueryNames: {
        if (payload.size() < 4) {
          return Malformed("batched names shorter than the count");
        }
        const uint32_t count = ReadScalar<uint32_t>(payload.data());
        // Each name costs at least its 4-byte length header; an
        // adversarial count cannot drive allocation past the frame.
        if (size_t{count} > (payload.size() - 4) / 4) {
          return Malformed("batched-name count exceeds the field");
        }
        request.query_names.clear();
        request.query_names.reserve(count);
        size_t offset = 4;
        for (uint32_t i = 0; i < count; ++i) {
          if (payload.size() - offset < 4) {
            return Malformed("truncated batched-name length");
          }
          const uint32_t len =
              ReadScalar<uint32_t>(payload.data() + offset);
          offset += 4;
          if (payload.size() - offset < len) {
            return Malformed("truncated batched name");
          }
          request.query_names.emplace_back(payload.data() + offset, len);
          offset += len;
        }
        break;
      }
      default:
        break;  // unknown field: skip (forward compatibility)
    }
  }
  // An empty/missing query_name is left to the endpoint (kUnknownQuery):
  // rejecting it here would lose the request id and force the reply to
  // carry id 0, which a pipelining client cannot correlate.
  return request;
}

Result<StatsRequest> DecodeStatsRequest(std::string_view frame) {
  std::string_view fields;
  Status header = OpenFrame(frame, kMsgTypeStats, &fields);
  if (!header.ok()) return header;
  StatsRequest request;
  request.version = static_cast<uint8_t>(frame[6]);
  FieldCursor cursor(fields);
  while (!cursor.Done()) {
    uint8_t tag;
    std::string_view payload;
    if (!cursor.Next(&tag, &payload)) {
      return Malformed("truncated stats field");
    }
    switch (tag) {
      case kStatsAnalystId:
        request.analyst_id.assign(payload.data(), payload.size());
        break;
      case kStatsRequestId:
        if (!ReadExactScalar(payload, &request.request_id)) {
          return Malformed("stats request_id is not a u64");
        }
        break;
      default:
        break;  // unknown field: skip (forward compatibility)
    }
  }
  return request;
}

Result<MetricsRequest> DecodeMetricsRequest(std::string_view frame) {
  std::string_view fields;
  Status header = OpenFrame(frame, kMsgTypeMetrics, &fields);
  if (!header.ok()) return header;
  MetricsRequest request;
  request.version = static_cast<uint8_t>(frame[6]);
  FieldCursor cursor(fields);
  while (!cursor.Done()) {
    uint8_t tag;
    std::string_view payload;
    if (!cursor.Next(&tag, &payload)) {
      return Malformed("truncated metrics field");
    }
    switch (tag) {
      case kMetricsAnalystId:
        request.analyst_id.assign(payload.data(), payload.size());
        break;
      case kMetricsRequestId:
        if (!ReadExactScalar(payload, &request.request_id)) {
          return Malformed("metrics request_id is not a u64");
        }
        break;
      case kMetricsFormat:
        if (!ReadExactScalar(payload, &request.format)) {
          return Malformed("metrics format is not a u8");
        }
        break;
      default:
        break;  // unknown field: skip (forward compatibility)
    }
  }
  return request;
}

Result<TraceRequest> DecodeTraceRequest(std::string_view frame) {
  std::string_view fields;
  Status header = OpenFrame(frame, kMsgTypeTrace, &fields);
  if (!header.ok()) return header;
  TraceRequest request;
  request.version = static_cast<uint8_t>(frame[6]);
  FieldCursor cursor(fields);
  while (!cursor.Done()) {
    uint8_t tag;
    std::string_view payload;
    if (!cursor.Next(&tag, &payload)) {
      return Malformed("truncated trace field");
    }
    switch (tag) {
      case kTraceAnalystId:
        request.analyst_id.assign(payload.data(), payload.size());
        break;
      case kTraceRequestId:
        if (!ReadExactScalar(payload, &request.request_id)) {
          return Malformed("trace request_id is not a u64");
        }
        break;
      case kTraceMinTotalUs:
        if (!ReadExactScalar(payload, &request.min_total_us)) {
          return Malformed("trace min_total_us is not a u64");
        }
        break;
      case kTraceMaxTraces:
        if (!ReadExactScalar(payload, &request.max_traces)) {
          return Malformed("trace max_traces is not a u32");
        }
        break;
      default:
        break;  // unknown field: skip (forward compatibility)
    }
  }
  return request;
}

Result<HelloRequest> DecodeHelloRequest(std::string_view frame) {
  std::string_view fields;
  Status header = OpenFrame(frame, kMsgTypeHello, &fields);
  if (!header.ok()) return header;
  HelloRequest request;
  request.version = static_cast<uint8_t>(frame[6]);
  FieldCursor cursor(fields);
  while (!cursor.Done()) {
    uint8_t tag;
    std::string_view payload;
    if (!cursor.Next(&tag, &payload)) {
      return Malformed("truncated hello field");
    }
    switch (tag) {
      case kHelloAnalystId:
        request.analyst_id.assign(payload.data(), payload.size());
        break;
      case kHelloRequestId:
        if (!ReadExactScalar(payload, &request.request_id)) {
          return Malformed("hello request_id is not a u64");
        }
        break;
      case kHelloAuthToken:
        request.auth_token.assign(payload.data(), payload.size());
        break;
      default:
        break;  // unknown field: skip (forward compatibility)
    }
  }
  return request;
}

Result<ShardRpcRequest> DecodeShardRpcRequest(std::string_view frame) {
  std::string_view fields;
  Status header = OpenFrame(frame, kMsgTypeShardRpc, &fields);
  if (!header.ok()) return header;
  ShardRpcRequest request;
  request.version = static_cast<uint8_t>(frame[6]);
  FieldCursor cursor(fields);
  while (!cursor.Done()) {
    uint8_t tag;
    std::string_view payload;
    if (!cursor.Next(&tag, &payload)) {
      return Malformed("truncated shard-rpc field");
    }
    switch (tag) {
      case kRpcRequestId:
        if (!ReadExactScalar(payload, &request.request_id)) {
          return Malformed("shard-rpc request_id is not a u64");
        }
        break;
      case kRpcOp: {
        // Any u8 is accepted here; the WORKER answers unknown ops with a
        // typed error, so a newer combiner degrades loudly, not by
        // failing to decode.
        uint8_t raw;
        if (!ReadExactScalar(payload, &raw)) {
          return Malformed("shard-rpc op is not a u8");
        }
        request.op = static_cast<ShardRpcOp>(raw);
        break;
      }
      case kRpcUpdateSeq:
        if (!ReadExactScalar(payload, &request.update_seq)) {
          return Malformed("shard-rpc update_seq is not a u64");
        }
        break;
      case kRpcConfig: {
        if (payload.size() != 16) {
          return Malformed("shard-rpc config is not 16 bytes");
        }
        const char* p = payload.data();
        request.domain_size = ReadScalar<uint32_t>(p);
        request.num_shards = ReadScalar<uint32_t>(p + 4);
        request.group_lo = ReadScalar<uint32_t>(p + 8);
        request.group_hi = ReadScalar<uint32_t>(p + 12);
        break;
      }
      case kRpcEta:
        if (!ReadExactScalar(payload, &request.eta)) {
          return Malformed("shard-rpc eta is not a double");
        }
        break;
      case kRpcGlobalMax:
        if (!ReadExactScalar(payload, &request.global_max)) {
          return Malformed("shard-rpc global_max is not a double");
        }
        break;
      case kRpcTotal:
        if (!ReadExactScalar(payload, &request.total)) {
          return Malformed("shard-rpc total is not a double");
        }
        break;
      case kRpcSnapshotRange: {
        if (payload.size() != 8) {
          return Malformed("shard-rpc snapshot range is not 8 bytes");
        }
        request.snapshot_lo = ReadScalar<uint32_t>(payload.data());
        request.snapshot_hi = ReadScalar<uint32_t>(payload.data() + 4);
        break;
      }
      case kRpcPayoff: {
        if (payload.size() % sizeof(double) != 0) {
          return Malformed("payoff slice is not a multiple of 8 bytes");
        }
        const size_t n = payload.size() / sizeof(double);
        request.payoff.resize(n);
        for (size_t i = 0; i < n; ++i) {
          request.payoff[i] =
              ReadScalar<double>(payload.data() + i * sizeof(double));
        }
        break;
      }
      default:
        break;  // unknown field: skip (forward compatibility)
    }
  }
  return request;
}

Result<AnswerEnvelope> DecodeAnswer(std::string_view frame) {
  std::string_view fields;
  Status header = OpenFrame(frame, kMsgTypeAnswer, &fields);
  if (!header.ok()) return header;
  AnswerEnvelope envelope;
  envelope.version = static_cast<uint8_t>(frame[6]);
  FieldCursor cursor(fields);
  while (!cursor.Done()) {
    uint8_t tag;
    std::string_view payload;
    if (!cursor.Next(&tag, &payload)) {
      return Malformed("truncated answer field");
    }
    switch (tag) {
      case kAnsRequestId:
        if (!ReadExactScalar(payload, &envelope.request_id)) {
          return Malformed("request_id is not a u64");
        }
        break;
      case kAnsError: {
        uint16_t raw;
        if (!ReadExactScalar(payload, &raw)) {
          return Malformed("error code is not a u16");
        }
        if (raw > static_cast<uint16_t>(kMaxErrorCode)) {
          // A code minted by a newer peer within an accepted version:
          // degrade to kInternal rather than invent meaning.
          raw = static_cast<uint16_t>(ErrorCode::kInternal);
        }
        envelope.error = static_cast<ErrorCode>(raw);
        break;
      }
      case kAnsMessage:
        envelope.message.assign(payload.data(), payload.size());
        break;
      case kAnsAnswer: {
        if (payload.size() % sizeof(double) != 0) {
          return Malformed("answer vector is not a multiple of 8 bytes");
        }
        const size_t dim = payload.size() / sizeof(double);
        envelope.answer.resize(dim);
        for (size_t i = 0; i < dim; ++i) {
          envelope.answer[i] =
              ReadScalar<double>(payload.data() + i * sizeof(double));
        }
        break;
      }
      case kAnsMeta: {
        if (payload.size() < kMetaBytes) {
          return Malformed("serving metadata shorter than v1 layout");
        }
        const char* p = payload.data();
        envelope.meta.epoch = ReadScalar<uint64_t>(p);
        envelope.meta.hard_round = p[8] != 0;
        envelope.meta.cache_hit = p[9] != 0;
        envelope.meta.hard_rounds_remaining = ReadScalar<int64_t>(p + 10);
        envelope.meta.epsilon_spent = ReadScalar<double>(p + 18);
        envelope.meta.delta_spent = ReadScalar<double>(p + 26);
        // Appended within v1: pre-shard peers emit (and expect) only the
        // baseline layout, so the tail is optional on decode.
        if (payload.size() >= kMetaShardsBytes) {
          envelope.meta.shards = ReadScalar<uint32_t>(p + 34);
        }
        if (payload.size() >= kMetaTimingBytes) {
          envelope.meta.queue_wait_us = ReadScalar<uint64_t>(p + 38);
          envelope.meta.serve_us = ReadScalar<uint64_t>(p + 46);
        }
        if (payload.size() >= kMetaSpansBytes) {
          envelope.meta.prepare_us = ReadScalar<uint64_t>(p + 54);
          envelope.meta.solve_us = ReadScalar<uint64_t>(p + 62);
          envelope.meta.mw_us = ReadScalar<uint64_t>(p + 70);
          envelope.meta.commit_us = ReadScalar<uint64_t>(p + 78);
        }
        break;
      }
      default:
        break;  // unknown field: skip (forward compatibility)
    }
  }
  return envelope;
}

}  // namespace api
}  // namespace pmw
