// Umbrella header for the pmw::api serving surface — the one include
// client programs need besides data/ (dataset construction).
//
// The protocol in one breath: build a QueryCatalog (named CM queries),
// stand up a ServerEndpoint over a sensitive dataset, connect a
// Transport (in-process or Unix socket), and Call() named queries
// through a Client; answers come back as AnswerEnvelopes carrying the
// released theta, a typed ErrorCode, and serving metadata (epoch,
// hard/soft round, cache-hit flag, remaining budget). See README's
// "API layer & wire protocol" section for the frame layout and the
// error taxonomy table.

#ifndef PMWCM_API_PMW_API_H_
#define PMWCM_API_PMW_API_H_

#include "api/catalog.h"              // IWYU pragma: export
#include "api/client.h"               // IWYU pragma: export
#include "api/codec.h"                // IWYU pragma: export
#include "api/endpoint.h"             // IWYU pragma: export
#include "api/envelope.h"             // IWYU pragma: export
#include "api/error.h"                // IWYU pragma: export
#include "api/in_process_transport.h" // IWYU pragma: export
#include "api/socket_transport.h"     // IWYU pragma: export
#include "api/transport.h"            // IWYU pragma: export

#endif  // PMWCM_API_PMW_API_H_
