#include "api/socket_transport.h"

#include <sys/socket.h>
#include <unistd.h>

#include <utility>

#include "api/codec.h"
#include "common/check.h"

namespace pmw {
namespace api {
namespace {

// ---------------------------------------------------------------------------
// EndpointFrameSink — what analyst-facing frames MEAN
// ---------------------------------------------------------------------------

/// The front-door dispatch: decodes each frame, routes it to the
/// ServerEndpoint, and enforces the hello/auth connection binding.
/// Shared verbatim by SocketServer and TcpServer, which is the whole
/// point — the protocol's semantics cannot depend on the address family.
class EndpointFrameSink : public FrameSink {
 public:
  explicit EndpointFrameSink(ServerEndpoint* endpoint) : endpoint_(endpoint) {
    PMW_CHECK(endpoint != nullptr);
  }

  void OnFrame(std::string_view frame, ConnState* conn,
               std::vector<std::future<AnswerEnvelope>>* replies) override {
    CodecCounters& counters = endpoint_->codec_counters();
    // Typed polls (stats, metrics scrapes, trace polls) are answered
    // synchronously — they only read counters and rings — as one normal
    // answer frame each. A decode failure on any of them answers with a
    // typed error envelope, same as a request.
    const auto answer_now = [replies](AnswerEnvelope envelope) {
      std::promise<AnswerEnvelope> ready;
      ready.set_value(std::move(envelope));
      replies->push_back(ready.get_future());
    };
    const auto poll_error = [&](const Status& status) {
      counters.decode_errors->Add(1);
      AnswerEnvelope envelope;
      envelope.error = ClassifyStatus(status);
      envelope.message = status.message();
      return envelope;
    };
    // The connection-identity gate: on an endpoint with an auth token,
    // every non-hello frame must follow an accepted hello AND speak as
    // the analyst that hello bound — otherwise QuotaManager accounting
    // could be spoofed by writing someone else's id into a request.
    // Rejections cost zero privacy (they never reach the mechanism).
    const auto auth_rejected = [&](const std::string& analyst,
                                   uint64_t first_id, size_t count) {
      if (!endpoint_->requires_hello()) return false;
      std::string why;
      if (!conn->hello_ok) {
        why =
            "endpoint: connection is not authenticated; send a hello "
            "frame first";
      } else if (conn->bound_analyst != analyst) {
        why = "endpoint: request analyst '" + analyst +
              "' does not match the connection's bound analyst '" +
              conn->bound_analyst + "'";
      } else {
        return false;
      }
      for (size_t i = 0; i < count; ++i) {
        AnswerEnvelope envelope;
        envelope.request_id = first_id + i;
        envelope.error = ErrorCode::kAuthRequired;
        envelope.message = why;
        answer_now(std::move(envelope));
      }
      return true;
    };
    const uint8_t msg_type = PeekMsgType(frame);
    if (msg_type == kMsgTypeHello) {
      Result<HelloRequest> hello = DecodeHelloRequest(frame);
      if (hello.ok()) {
        counters.frames_decoded->Add(1);
        AnswerEnvelope envelope = endpoint_->HandleHello(hello.value());
        if (envelope.ok()) {
          conn->hello_ok = true;
          conn->bound_analyst = hello.value().analyst_id;
        }
        answer_now(std::move(envelope));
      } else {
        answer_now(poll_error(hello.status()));
      }
    } else if (msg_type == kMsgTypeShardRpc) {
      // The worker protocol NEVER crosses the public surface: the front
      // door answers it with a typed error no matter how well-formed
      // the frame is (decoding only to echo the correlation id).
      Result<ShardRpcRequest> rpc = DecodeShardRpcRequest(frame);
      AnswerEnvelope envelope;
      if (rpc.ok()) {
        counters.frames_decoded->Add(1);
        envelope.request_id = rpc.value().request_id;
      }
      envelope.error = ErrorCode::kMalformedRequest;
      envelope.message =
          "endpoint: shard rpcs are internal to the cluster; this is the "
          "analyst front door";
      answer_now(std::move(envelope));
    } else if (msg_type == kMsgTypeStats) {
      Result<StatsRequest> stats = DecodeStatsRequest(frame);
      if (stats.ok()) {
        counters.frames_decoded->Add(1);
        if (!auth_rejected(stats.value().analyst_id,
                           stats.value().request_id, 1)) {
          answer_now(endpoint_->HandleStats(stats.value()));
        }
      } else {
        answer_now(poll_error(stats.status()));
      }
    } else if (msg_type == kMsgTypeMetrics) {
      Result<MetricsRequest> metrics = DecodeMetricsRequest(frame);
      if (metrics.ok()) {
        counters.frames_decoded->Add(1);
        if (!auth_rejected(metrics.value().analyst_id,
                           metrics.value().request_id, 1)) {
          answer_now(endpoint_->HandleMetrics(metrics.value()));
        }
      } else {
        answer_now(poll_error(metrics.status()));
      }
    } else if (msg_type == kMsgTypeTrace) {
      Result<TraceRequest> trace = DecodeTraceRequest(frame);
      if (trace.ok()) {
        counters.frames_decoded->Add(1);
        if (!auth_rejected(trace.value().analyst_id,
                           trace.value().request_id, 1)) {
          answer_now(endpoint_->HandleTrace(trace.value()));
        }
      } else {
        answer_now(poll_error(trace.status()));
      }
    } else {
      Result<QueryRequest> request = DecodeRequest(frame);
      if (request.ok()) {
        counters.frames_decoded->Add(1);
        const QueryRequest& decoded = request.value();
        const size_t count =
            decoded.query_names.empty() ? 1 : decoded.query_names.size();
        if (!auth_rejected(decoded.analyst_id, decoded.request_id, count)) {
          // HandleBatch serves single and batched frames alike: one
          // reply future per named query, in order.
          *replies = endpoint_->HandleBatch(std::move(request).value());
        }
      } else {
        // Typed decode error (malformed fields, foreign version):
        // answer it like any other request instead of killing the
        // connection.
        answer_now(poll_error(request.status()));
      }
    }
  }

  void OnBytesIn(long long bytes) override {
    endpoint_->codec_counters().bytes_in->Add(bytes);
  }

  void OnReplyEncoded(long long bytes) override {
    CodecCounters& counters = endpoint_->codec_counters();
    counters.frames_encoded->Add(1);
    counters.bytes_out->Add(bytes);
  }

  void OnDecodeError() override {
    endpoint_->codec_counters().decode_errors->Add(1);
  }

 private:
  ServerEndpoint* endpoint_;
};

std::unique_ptr<FrameSink> MakeEndpointSink(ServerEndpoint* endpoint) {
  return std::make_unique<EndpointFrameSink>(endpoint);
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketServer (Unix-domain)
// ---------------------------------------------------------------------------

SocketServer::SocketServer(ServerEndpoint* endpoint, std::string socket_path)
    : path_(std::move(socket_path)),
      sink_(MakeEndpointSink(endpoint)),
      server_(sink_.get()) {}

SocketServer::~SocketServer() { Shutdown(); }

Status SocketServer::Start() {
  Result<int> listener = ListenUnix(path_);
  if (!listener.ok()) return listener.status();
  bound_ = true;
  server_.Serve(listener.value());
  return Status::Ok();
}

void SocketServer::Shutdown() {
  server_.Shutdown();
  // Only remove the path this server actually bound: a failed Start must
  // not delete a healthy sibling's socket file.
  if (bound_) ::unlink(path_.c_str());
}

// ---------------------------------------------------------------------------
// TcpServer
// ---------------------------------------------------------------------------

TcpServer::TcpServer(ServerEndpoint* endpoint, std::string host,
                     uint16_t port)
    : host_(std::move(host)),
      requested_port_(port),
      sink_(MakeEndpointSink(endpoint)),
      server_(sink_.get()) {}

TcpServer::~TcpServer() { Shutdown(); }

Status TcpServer::Start() {
  Result<int> listener = ListenTcp(host_, requested_port_, &bound_port_);
  if (!listener.ok()) return listener.status();
  server_.Serve(listener.value());
  return Status::Ok();
}

void TcpServer::Shutdown() { server_.Shutdown(); }

// ---------------------------------------------------------------------------
// StreamTransport (client trunk)
// ---------------------------------------------------------------------------

StreamTransport::~StreamTransport() { Close(); }

void StreamTransport::Adopt(Result<int> connected) {
  if (!connected.ok()) {
    // The typed connect error every later Send resolves with — callers
    // see a taxonomy-tagged kTransportError envelope, never a bare
    // errno string.
    connect_status_ = connected.status();
    return;
  }
  fd_ = connected.value();
  reader_ = std::thread([this] { ReadLoop(); });
}

AnswerEnvelope StreamTransport::TransportError(uint64_t request_id,
                                               const std::string& why) const {
  AnswerEnvelope envelope;
  envelope.request_id = request_id;
  envelope.error = ErrorCode::kTransportError;
  envelope.message = "stream transport: " + why;
  return envelope;
}

std::vector<std::future<AnswerEnvelope>> StreamTransport::ShipFrame(
    const std::string& wire, uint64_t first_id, size_t count) {
  std::vector<std::future<AnswerEnvelope>> futures;
  futures.reserve(count);
  if (!connect_status_.ok() || closed_.load(std::memory_order_acquire) ||
      broken_.load(std::memory_order_acquire)) {
    const std::string why =
        !connect_status_.ok() ? connect_status_.message()
        : closed_.load(std::memory_order_acquire)
            ? "channel is closed"
            : "connection is broken (no reader to resolve replies)";
    for (size_t i = 0; i < count; ++i) {
      std::promise<AnswerEnvelope> failed;
      futures.push_back(failed.get_future());
      failed.set_value(TransportError(first_id + i, why));
    }
    return futures;
  }
  // Register the whole id run before the single write: replies may start
  // arriving for early ids while later ones are still being registered
  // otherwise. Correlation ids must be unique among in-flight calls
  // (api::Client reserves whole runs); refuse duplicates rather than
  // cross wires.
  std::vector<uint64_t> registered;
  registered.reserve(count);
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    for (size_t i = 0; i < count; ++i) {
      std::promise<AnswerEnvelope> promise;
      futures.push_back(promise.get_future());
      auto [it, inserted] =
          pending_.try_emplace(first_id + i, std::move(promise));
      if (!inserted) {
        // try_emplace left `promise` untouched on failure; it would have
        // been moved into the map otherwise.
        std::promise<AnswerEnvelope> duplicate;
        futures.back() = duplicate.get_future();
        duplicate.set_value(
            TransportError(first_id + i, "duplicate in-flight request id"));
      } else {
        registered.push_back(first_id + i);
      }
    }
  }
  const auto fail_registered = [this, &registered](const std::string& why) {
    for (uint64_t id : registered) {
      std::promise<AnswerEnvelope> orphan;
      {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        auto it = pending_.find(id);
        if (it == pending_.end()) continue;  // reader already resolved
        orphan = std::move(it->second);
        pending_.erase(it);
      }
      orphan.set_value(TransportError(id, why));
    }
  };
  if (wire.size() > kMaxFramePayload + 4) {
    // The server's ExtractFrame would reject the frame and drop the
    // connection, killing every pipelined call; refuse just this one.
    fail_registered("request exceeds the frame size limit");
    return futures;
  }
  bool written = false;
  {
    // fd_ is only written (closed) under this lock, after the reader has
    // joined — so the descriptor cannot be closed or reused mid-write.
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (fd_ >= 0 && !closed_.load(std::memory_order_acquire)) {
      written = WriteAll(fd_, wire.data(), wire.size());
    }
  }
  if (!written || broken_.load(std::memory_order_acquire)) {
    // Either the write failed, or the reader died while these requests
    // were being registered (its FailAllPending sweep may have missed
    // them) — in both cases nothing will ever resolve the promises.
    fail_registered(written ? "connection is broken" : "write failed");
  }
  return futures;
}

std::future<AnswerEnvelope> StreamTransport::Send(QueryRequest request) {
  std::string wire;
  EncodeRequest(request, &wire);
  return std::move(ShipFrame(wire, request.request_id, 1).front());
}

std::vector<std::future<AnswerEnvelope>> StreamTransport::SendBatch(
    QueryRequest request) {
  if (request.query_names.empty()) return {};
  const size_t count = request.query_names.size();
  // The batch's whole point: ONE frame, ONE write syscall, N replies.
  std::string wire;
  EncodeRequest(request, &wire);
  return ShipFrame(wire, request.request_id, count);
}

std::future<AnswerEnvelope> StreamTransport::SendStats(StatsRequest request) {
  std::string wire;
  EncodeStatsRequest(request, &wire);
  return std::move(ShipFrame(wire, request.request_id, 1).front());
}

std::future<AnswerEnvelope> StreamTransport::SendMetrics(
    MetricsRequest request) {
  std::string wire;
  EncodeMetricsRequest(request, &wire);
  return std::move(ShipFrame(wire, request.request_id, 1).front());
}

std::future<AnswerEnvelope> StreamTransport::SendTrace(TraceRequest request) {
  std::string wire;
  EncodeTraceRequest(request, &wire);
  return std::move(ShipFrame(wire, request.request_id, 1).front());
}

std::future<AnswerEnvelope> StreamTransport::SendHello(HelloRequest request) {
  std::string wire;
  EncodeHelloRequest(request, &wire);
  return std::move(ShipFrame(wire, request.request_id, 1).front());
}

std::future<AnswerEnvelope> StreamTransport::SendShardRpc(
    ShardRpcRequest request) {
  std::string wire;
  EncodeShardRpcRequest(request, &wire);
  return std::move(ShipFrame(wire, request.request_id, 1).front());
}

void StreamTransport::ReadLoop() {
  std::string buffer;
  for (;;) {
    const ssize_t n = ReadSome(fd_, &buffer);
    if (n <= 0) break;
    FrameStatus framing;
    bool decode_failed = false;
    const size_t consumed = WalkFrames(
        buffer, &framing, [this, &decode_failed](std::string_view frame) {
          Result<AnswerEnvelope> decoded = DecodeAnswer(frame);
          if (!decoded.ok()) {
            // A well-framed but undecodable reply (corrupt fields,
            // foreign version): its call could never be resolved, and
            // the blocked caller is often the only thread that would
            // ever Close() — treat the stream as dead so FailAllPending
            // below unblocks everyone with a typed error.
            decode_failed = true;
            return;
          }
          AnswerEnvelope envelope = std::move(decoded).value();
          std::promise<AnswerEnvelope> resolved;
          bool found = false;
          {
            std::lock_guard<std::mutex> lock(pending_mutex_);
            auto it = pending_.find(envelope.request_id);
            if (it == pending_.end() && envelope.request_id == 0 &&
                pending_.size() == 1) {
              // The server could not recover the id (undecodable
              // request). With exactly one call in flight the reply is
              // unambiguous; with more we must not guess — the calls
              // resolve at Close().
              it = pending_.begin();
            }
            if (it != pending_.end()) {
              resolved = std::move(it->second);
              pending_.erase(it);
              found = true;
            }
          }
          if (found) resolved.set_value(std::move(envelope));
        });
    buffer.erase(0, consumed);
    if (framing == FrameStatus::kMalformed || decode_failed) break;
  }
  // Publish "no reply can ever arrive" BEFORE failing what's pending:
  // a Send racing this sweep observes broken_ and fails its own promise.
  broken_.store(true, std::memory_order_release);
  FailAllPending("connection closed");
}

void StreamTransport::FailAllPending(const std::string& why) {
  std::unordered_map<uint64_t, std::promise<AnswerEnvelope>> orphans;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    orphans.swap(pending_);
  }
  for (auto& [id, promise] : orphans) {
    promise.set_value(TransportError(id, why));
  }
}

void StreamTransport::Close() {
  std::lock_guard<std::mutex> close_lock(close_mutex_);
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  // shutdown() (not close) wakes the reader and any blocked writer while
  // keeping the descriptor number reserved; the actual close happens
  // under write_mutex_ so a concurrent Send can never write into a
  // closed — or worse, reused — descriptor.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  FailAllPending("channel is closed");
}

// ---------------------------------------------------------------------------
// Concrete connectors
// ---------------------------------------------------------------------------

SocketTransport::SocketTransport(const std::string& socket_path) {
  Adopt(ConnectUnix(socket_path));
}

TcpTransport::TcpTransport(const std::string& host, uint16_t port) {
  Adopt(ConnectTcp(host, port));
}

}  // namespace api
}  // namespace pmw
