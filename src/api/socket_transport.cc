#include "api/socket_transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "api/codec.h"
#include "common/check.h"

namespace pmw {
namespace api {
namespace {

/// send(2) until done; false on any unrecoverable error. MSG_NOSIGNAL:
/// a peer that hung up must surface as EPIPE here, not as a SIGPIPE that
/// kills the whole serving process.
bool WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n =
        ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Appends up to 64 KiB to *buffer; returns bytes read (0 on orderly
/// EOF, -1 on error).
ssize_t ReadSome(int fd, std::string* buffer) {
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n > 0) buffer->append(chunk, static_cast<size_t>(n));
    return n;
  }
}

/// Walks every complete frame at the front of `buffer`, invoking
/// on_frame(frame_bytes) per frame; returns the bytes consumed (trim
/// once, after the walk) and leaves the terminal framing state in
/// *final (kNeedMore: wait for bytes; kMalformed: drop the connection).
/// Shared by the server and client read loops so framing policy cannot
/// diverge between the two sides.
template <typename OnFrame>
size_t WalkFrames(std::string_view buffer, FrameStatus* final,
                  OnFrame&& on_frame) {
  size_t offset = 0;
  size_t frame_size = 0;
  while ((*final = ExtractFrame(buffer.substr(offset), &frame_size)) ==
         FrameStatus::kFrame) {
    on_frame(buffer.substr(offset, frame_size));
    offset += frame_size;
  }
  return offset;
}

Status FillAddress(const std::string& path, sockaddr_un* address) {
  std::memset(address, 0, sizeof(*address));
  address->sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(address->sun_path)) {
    return MakeStatus(ErrorCode::kTransportError,
                      "socket path empty or longer than sun_path: " + path);
  }
  std::memcpy(address->sun_path, path.data(), path.size());
  return Status::Ok();
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketServer
// ---------------------------------------------------------------------------

SocketServer::SocketServer(ServerEndpoint* endpoint, std::string socket_path)
    : endpoint_(endpoint), path_(std::move(socket_path)) {
  PMW_CHECK(endpoint != nullptr);
}

SocketServer::~SocketServer() { Shutdown(); }

Status SocketServer::Start() {
  sockaddr_un address;
  Status addressed = FillAddress(path_, &address);
  if (!addressed.ok()) return addressed;
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return MakeStatus(ErrorCode::kTransportError,
                      "socket() failed: " + std::string(strerror(errno)));
  }
  ::unlink(path_.c_str());  // a stale path from a crashed predecessor
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const std::string why = strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return MakeStatus(ErrorCode::kTransportError,
                      "bind/listen on " + path_ + " failed: " + why);
  }
  bound_ = true;
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void SocketServer::ReapFinished() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->active.load(std::memory_order_acquire) == 0) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      if ((*it)->writer.joinable()) (*it)->writer.join();
      ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketServer::AcceptLoop() {
  for (;;) {
    // Poll with a timeout instead of blocking in accept(): departed
    // connections get reaped within ~500ms even when no new client ever
    // connects, not only on the next accept.
    pollfd listener{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&listener, 1, /*timeout_ms=*/500);
    ReapFinished();
    if (shutdown_.load(std::memory_order_acquire)) return;
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (ready == 0) continue;  // timeout: reap-only pass
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (shutdown) or fatal: stop accepting
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    raw->fd = fd;
    raw->reader = std::thread([this, raw] { ReadLoop(raw); });
    raw->writer = std::thread([this, raw] { WriteLoop(raw); });
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(std::move(connection));
  }
}

void SocketServer::ReadLoop(Connection* connection) {
  CodecCounters& counters = endpoint_->codec_counters();
  std::string buffer;
  bool drop = false;
  while (!drop) {
    const ssize_t n = ReadSome(connection->fd, &buffer);
    if (n <= 0) break;  // EOF or error: client hung up
    counters.bytes_in->Add(n);
    FrameStatus framing;
    const size_t consumed = WalkFrames(
        buffer, &framing, [&](std::string_view frame) {
          std::vector<std::future<AnswerEnvelope>> replies;
          // Typed polls (stats, metrics scrapes, trace polls) are
          // answered synchronously — they only read counters and rings —
          // as one normal answer frame each. A decode failure on any of
          // them answers with a typed error envelope, same as a request.
          const auto answer_now = [&replies](AnswerEnvelope envelope) {
            std::promise<AnswerEnvelope> ready;
            ready.set_value(std::move(envelope));
            replies.push_back(ready.get_future());
          };
          const auto poll_error = [&](const Status& status) {
            counters.decode_errors->Add(1);
            AnswerEnvelope envelope;
            envelope.error = ClassifyStatus(status);
            envelope.message = status.message();
            return envelope;
          };
          const uint8_t msg_type = PeekMsgType(frame);
          if (msg_type == kMsgTypeStats) {
            Result<StatsRequest> stats = DecodeStatsRequest(frame);
            if (stats.ok()) {
              counters.frames_decoded->Add(1);
              answer_now(endpoint_->HandleStats(stats.value()));
            } else {
              answer_now(poll_error(stats.status()));
            }
          } else if (msg_type == kMsgTypeMetrics) {
            Result<MetricsRequest> metrics = DecodeMetricsRequest(frame);
            if (metrics.ok()) {
              counters.frames_decoded->Add(1);
              answer_now(endpoint_->HandleMetrics(metrics.value()));
            } else {
              answer_now(poll_error(metrics.status()));
            }
          } else if (msg_type == kMsgTypeTrace) {
            Result<TraceRequest> trace = DecodeTraceRequest(frame);
            if (trace.ok()) {
              counters.frames_decoded->Add(1);
              answer_now(endpoint_->HandleTrace(trace.value()));
            } else {
              answer_now(poll_error(trace.status()));
            }
          } else {
            Result<QueryRequest> request = DecodeRequest(frame);
            if (request.ok()) {
              counters.frames_decoded->Add(1);
              // HandleBatch serves single and batched frames alike: one
              // reply future per named query, in order.
              replies = endpoint_->HandleBatch(std::move(request).value());
            } else {
              // Typed decode error (malformed fields, foreign version):
              // answer it like any other request instead of killing the
              // connection.
              answer_now(poll_error(request.status()));
            }
          }
          {
            std::lock_guard<std::mutex> lock(connection->mutex);
            for (std::future<AnswerEnvelope>& reply : replies) {
              connection->pending.push_back(std::move(reply));
            }
          }
          connection->cv.notify_one();
        });
    buffer.erase(0, consumed);
    if (framing == FrameStatus::kMalformed) {
      // The length prefix itself is garbage: no way to resynchronize.
      counters.decode_errors->Add(1);
      drop = true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(connection->mutex);
    connection->reader_done = true;
  }
  connection->cv.notify_one();
  connection->active.fetch_sub(1, std::memory_order_acq_rel);
}

void SocketServer::WriteLoop(Connection* connection) {
  CodecCounters& counters = endpoint_->codec_counters();
  std::string wire;
  for (;;) {
    std::future<AnswerEnvelope> next;
    {
      std::unique_lock<std::mutex> lock(connection->mutex);
      connection->cv.wait(lock, [connection] {
        return !connection->pending.empty() || connection->reader_done;
      });
      if (connection->pending.empty()) break;  // reader done and drained
      next = std::move(connection->pending.front());
      connection->pending.pop_front();
    }
    AnswerEnvelope envelope = next.get();
    wire.clear();
    EncodeAnswer(envelope, &wire);
    if (wire.size() > kMaxFramePayload + 4) {
      // The peer's ExtractFrame would reject this frame and drop the
      // whole connection; fail only the one reply instead.
      AnswerEnvelope oversized;
      oversized.request_id = envelope.request_id;
      oversized.error = ErrorCode::kInternal;
      oversized.message = "endpoint: answer exceeds the frame size limit";
      oversized.meta = envelope.meta;
      wire.clear();
      EncodeAnswer(oversized, &wire);
    }
    counters.frames_encoded->Add(1);
    if (!WriteAll(connection->fd, wire.data(), wire.size())) break;
    counters.bytes_out->Add(static_cast<long long>(wire.size()));
  }
  // Wakes a reader still blocked in read(); the reader is always the
  // other live thread, so `active` cannot reach 0 before it exits too.
  ::shutdown(connection->fd, SHUT_RDWR);
  connection->active.fetch_sub(1, std::memory_order_acq_rel);
}

void SocketServer::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  if (listen_fd_ >= 0) {
    // Wake accept() and join the acceptor before closing, so the fd
    // number cannot be reused under it.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto& connection : connections_) {
    // Stop the reader (no new requests); the writer drains what's
    // pending — those replies resolve as long as the endpoint is still
    // up, which is why servers shut down before endpoints.
    ::shutdown(connection->fd, SHUT_RD);
    if (connection->reader.joinable()) connection->reader.join();
    if (connection->writer.joinable()) connection->writer.join();
    ::close(connection->fd);
  }
  connections_.clear();
  // Only remove the path this server actually bound: a failed Start must
  // not delete a healthy sibling's socket file.
  if (bound_) ::unlink(path_.c_str());
}

// ---------------------------------------------------------------------------
// SocketTransport
// ---------------------------------------------------------------------------

SocketTransport::SocketTransport(const std::string& socket_path) {
  sockaddr_un address;
  connect_status_ = FillAddress(socket_path, &address);
  if (!connect_status_.ok()) return;
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    connect_status_ = MakeStatus(
        ErrorCode::kTransportError,
        "socket() failed: " + std::string(strerror(errno)));
    return;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&address),
                sizeof(address)) != 0) {
    connect_status_ = MakeStatus(
        ErrorCode::kTransportError,
        "connect(" + socket_path + ") failed: " + strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return;
  }
  reader_ = std::thread([this] { ReadLoop(); });
}

SocketTransport::~SocketTransport() { Close(); }

AnswerEnvelope SocketTransport::TransportError(
    uint64_t request_id, const std::string& why) const {
  AnswerEnvelope envelope;
  envelope.request_id = request_id;
  envelope.error = ErrorCode::kTransportError;
  envelope.message = "socket transport: " + why;
  return envelope;
}

std::vector<std::future<AnswerEnvelope>> SocketTransport::ShipFrame(
    const std::string& wire, uint64_t first_id, size_t count) {
  std::vector<std::future<AnswerEnvelope>> futures;
  futures.reserve(count);
  if (!connect_status_.ok() || closed_.load(std::memory_order_acquire) ||
      broken_.load(std::memory_order_acquire)) {
    const std::string why =
        !connect_status_.ok() ? connect_status_.message()
        : closed_.load(std::memory_order_acquire)
            ? "channel is closed"
            : "connection is broken (no reader to resolve replies)";
    for (size_t i = 0; i < count; ++i) {
      std::promise<AnswerEnvelope> failed;
      futures.push_back(failed.get_future());
      failed.set_value(TransportError(first_id + i, why));
    }
    return futures;
  }
  // Register the whole id run before the single write: replies may start
  // arriving for early ids while later ones are still being registered
  // otherwise. Correlation ids must be unique among in-flight calls
  // (api::Client reserves whole runs); refuse duplicates rather than
  // cross wires.
  std::vector<uint64_t> registered;
  registered.reserve(count);
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    for (size_t i = 0; i < count; ++i) {
      std::promise<AnswerEnvelope> promise;
      futures.push_back(promise.get_future());
      auto [it, inserted] =
          pending_.try_emplace(first_id + i, std::move(promise));
      if (!inserted) {
        // try_emplace left `promise` untouched on failure; it would have
        // been moved into the map otherwise.
        std::promise<AnswerEnvelope> duplicate;
        futures.back() = duplicate.get_future();
        duplicate.set_value(TransportError(first_id + i,
                                           "duplicate in-flight request id"));
      } else {
        registered.push_back(first_id + i);
      }
    }
  }
  const auto fail_registered = [this, &registered](const std::string& why) {
    for (uint64_t id : registered) {
      std::promise<AnswerEnvelope> orphan;
      {
        std::lock_guard<std::mutex> lock(pending_mutex_);
        auto it = pending_.find(id);
        if (it == pending_.end()) continue;  // reader already resolved
        orphan = std::move(it->second);
        pending_.erase(it);
      }
      orphan.set_value(TransportError(id, why));
    }
  };
  if (wire.size() > kMaxFramePayload + 4) {
    // The server's ExtractFrame would reject the frame and drop the
    // connection, killing every pipelined call; refuse just this one.
    fail_registered("request exceeds the frame size limit");
    return futures;
  }
  bool written = false;
  {
    // fd_ is only written (closed) under this lock, after the reader has
    // joined — so the descriptor cannot be closed or reused mid-write.
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (fd_ >= 0 && !closed_.load(std::memory_order_acquire)) {
      written = WriteAll(fd_, wire.data(), wire.size());
    }
  }
  if (!written || broken_.load(std::memory_order_acquire)) {
    // Either the write failed, or the reader died while these requests
    // were being registered (its FailAllPending sweep may have missed
    // them) — in both cases nothing will ever resolve the promises.
    fail_registered(written ? "connection is broken" : "write failed");
  }
  return futures;
}

std::future<AnswerEnvelope> SocketTransport::Send(QueryRequest request) {
  std::string wire;
  EncodeRequest(request, &wire);
  return std::move(ShipFrame(wire, request.request_id, 1).front());
}

std::vector<std::future<AnswerEnvelope>> SocketTransport::SendBatch(
    QueryRequest request) {
  if (request.query_names.empty()) return {};
  const size_t count = request.query_names.size();
  // The batch's whole point: ONE frame, ONE write syscall, N replies.
  std::string wire;
  EncodeRequest(request, &wire);
  return ShipFrame(wire, request.request_id, count);
}

std::future<AnswerEnvelope> SocketTransport::SendStats(
    StatsRequest request) {
  std::string wire;
  EncodeStatsRequest(request, &wire);
  return std::move(ShipFrame(wire, request.request_id, 1).front());
}

std::future<AnswerEnvelope> SocketTransport::SendMetrics(
    MetricsRequest request) {
  std::string wire;
  EncodeMetricsRequest(request, &wire);
  return std::move(ShipFrame(wire, request.request_id, 1).front());
}

std::future<AnswerEnvelope> SocketTransport::SendTrace(TraceRequest request) {
  std::string wire;
  EncodeTraceRequest(request, &wire);
  return std::move(ShipFrame(wire, request.request_id, 1).front());
}

void SocketTransport::ReadLoop() {
  std::string buffer;
  for (;;) {
    const ssize_t n = ReadSome(fd_, &buffer);
    if (n <= 0) break;
    FrameStatus framing;
    bool decode_failed = false;
    const size_t consumed = WalkFrames(
        buffer, &framing, [this, &decode_failed](std::string_view frame) {
          Result<AnswerEnvelope> decoded = DecodeAnswer(frame);
          if (!decoded.ok()) {
            // A well-framed but undecodable reply (corrupt fields,
            // foreign version): its call could never be resolved, and
            // the blocked caller is often the only thread that would
            // ever Close() — treat the stream as dead so FailAllPending
            // below unblocks everyone with a typed error.
            decode_failed = true;
            return;
          }
          AnswerEnvelope envelope = std::move(decoded).value();
          std::promise<AnswerEnvelope> resolved;
          bool found = false;
          {
            std::lock_guard<std::mutex> lock(pending_mutex_);
            auto it = pending_.find(envelope.request_id);
            if (it == pending_.end() && envelope.request_id == 0 &&
                pending_.size() == 1) {
              // The server could not recover the id (undecodable
              // request). With exactly one call in flight the reply is
              // unambiguous; with more we must not guess — the calls
              // resolve at Close().
              it = pending_.begin();
            }
            if (it != pending_.end()) {
              resolved = std::move(it->second);
              pending_.erase(it);
              found = true;
            }
          }
          if (found) resolved.set_value(std::move(envelope));
        });
    buffer.erase(0, consumed);
    if (framing == FrameStatus::kMalformed || decode_failed) break;
  }
  // Publish "no reply can ever arrive" BEFORE failing what's pending:
  // a Send racing this sweep observes broken_ and fails its own promise.
  broken_.store(true, std::memory_order_release);
  FailAllPending("connection closed");
}

void SocketTransport::FailAllPending(const std::string& why) {
  std::unordered_map<uint64_t, std::promise<AnswerEnvelope>> orphans;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    orphans.swap(pending_);
  }
  for (auto& [id, promise] : orphans) {
    promise.set_value(TransportError(id, why));
  }
}

void SocketTransport::Close() {
  std::lock_guard<std::mutex> close_lock(close_mutex_);
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  // shutdown() (not close) wakes the reader and any blocked writer while
  // keeping the descriptor number reserved; the actual close happens
  // under write_mutex_ so a concurrent Send can never write into a
  // closed — or worse, reused — descriptor.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  if (reader_.joinable()) reader_.join();
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  FailAllPending("channel is closed");
}

}  // namespace api
}  // namespace pmw
