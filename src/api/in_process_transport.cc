#include "api/in_process_transport.h"

#include <string>
#include <utility>

#include "api/codec.h"
#include "common/check.h"

namespace pmw {
namespace api {

InProcessTransport::InProcessTransport(ServerEndpoint* endpoint,
                                       bool verify_codec)
    : endpoint_(endpoint), verify_codec_(verify_codec) {
  PMW_CHECK(endpoint != nullptr);
}

std::future<AnswerEnvelope> InProcessTransport::VerifyReply(
    std::future<AnswerEnvelope> served) {
  CodecCounters& counters = endpoint_->codec_counters();
  return std::async(
      std::launch::deferred,
      [&counters, inner = std::move(served)]() mutable {
        AnswerEnvelope envelope = inner.get();
        std::string reply;
        EncodeAnswer(envelope, &reply);
        counters.frames_encoded->Add(1);
        counters.bytes_out->Add(static_cast<long long>(reply.size()));
        Result<AnswerEnvelope> decoded_reply = DecodeAnswer(reply);
        PMW_CHECK_MSG(decoded_reply.ok(),
                      "answer failed to round-trip the codec: "
                          << decoded_reply.status().ToString());
        counters.frames_decoded->Add(1);
        return std::move(decoded_reply).value();
      });
}

std::future<AnswerEnvelope> InProcessTransport::Send(QueryRequest request) {
  if (!verify_codec_) {
    return endpoint_->Handle(std::move(request));
  }
  // Verify-codec mode: the request crosses the real byte format both
  // ways. Decode failures surface exactly as the socket server would
  // surface them — a typed error envelope, never an exception.
  CodecCounters& counters = endpoint_->codec_counters();
  std::string wire;
  EncodeRequest(request, &wire);
  counters.frames_encoded->Add(1);
  counters.bytes_in->Add(static_cast<long long>(wire.size()));
  Result<QueryRequest> decoded = DecodeRequest(wire);
  if (!decoded.ok()) {
    counters.decode_errors->Add(1);
    AnswerEnvelope envelope;
    envelope.request_id = request.request_id;
    envelope.error = ClassifyStatus(decoded.status());
    envelope.message = decoded.status().message();
    std::promise<AnswerEnvelope> promise;
    promise.set_value(std::move(envelope));
    return promise.get_future();
  }
  counters.frames_decoded->Add(1);
  return VerifyReply(endpoint_->Handle(std::move(decoded).value()));
}

std::vector<std::future<AnswerEnvelope>> InProcessTransport::SendBatch(
    QueryRequest request) {
  if (!verify_codec_) {
    return endpoint_->HandleBatch(std::move(request));
  }
  // Verify-codec mode: the batch crosses the wire as its real shape —
  // ONE request frame carrying every name — then fans out server-side.
  CodecCounters& counters = endpoint_->codec_counters();
  const size_t names = request.query_names.size();
  std::string wire;
  EncodeRequest(request, &wire);
  counters.frames_encoded->Add(1);
  counters.bytes_in->Add(static_cast<long long>(wire.size()));
  Result<QueryRequest> decoded = DecodeRequest(wire);
  if (!decoded.ok()) {
    counters.decode_errors->Add(1);
    std::vector<std::future<AnswerEnvelope>> replies;
    replies.reserve(names);
    for (size_t i = 0; i < names; ++i) {
      AnswerEnvelope envelope;
      envelope.request_id = request.request_id + i;
      envelope.error = ClassifyStatus(decoded.status());
      envelope.message = decoded.status().message();
      std::promise<AnswerEnvelope> promise;
      promise.set_value(std::move(envelope));
      replies.push_back(promise.get_future());
    }
    return replies;
  }
  counters.frames_decoded->Add(1);
  std::vector<std::future<AnswerEnvelope>> served =
      endpoint_->HandleBatch(std::move(decoded).value());
  std::vector<std::future<AnswerEnvelope>> replies;
  replies.reserve(served.size());
  for (std::future<AnswerEnvelope>& reply : served) {
    replies.push_back(VerifyReply(std::move(reply)));
  }
  return replies;
}

std::future<AnswerEnvelope> InProcessTransport::SendStats(
    StatsRequest request) {
  std::promise<AnswerEnvelope> promise;
  std::future<AnswerEnvelope> future = promise.get_future();
  if (!verify_codec_) {
    promise.set_value(endpoint_->HandleStats(request));
    return future;
  }
  CodecCounters& counters = endpoint_->codec_counters();
  std::string wire;
  EncodeStatsRequest(request, &wire);
  counters.frames_encoded->Add(1);
  counters.bytes_in->Add(static_cast<long long>(wire.size()));
  Result<StatsRequest> decoded = DecodeStatsRequest(wire);
  if (!decoded.ok()) {
    counters.decode_errors->Add(1);
    AnswerEnvelope envelope;
    envelope.request_id = request.request_id;
    envelope.error = ClassifyStatus(decoded.status());
    envelope.message = decoded.status().message();
    promise.set_value(std::move(envelope));
    return future;
  }
  counters.frames_decoded->Add(1);
  std::promise<AnswerEnvelope> served;
  std::future<AnswerEnvelope> inner = served.get_future();
  served.set_value(endpoint_->HandleStats(std::move(decoded).value()));
  return VerifyReply(std::move(inner));
}

std::future<AnswerEnvelope> InProcessTransport::SendMetrics(
    MetricsRequest request) {
  std::promise<AnswerEnvelope> promise;
  std::future<AnswerEnvelope> future = promise.get_future();
  if (!verify_codec_) {
    promise.set_value(endpoint_->HandleMetrics(request));
    return future;
  }
  CodecCounters& counters = endpoint_->codec_counters();
  std::string wire;
  EncodeMetricsRequest(request, &wire);
  counters.frames_encoded->Add(1);
  counters.bytes_in->Add(static_cast<long long>(wire.size()));
  Result<MetricsRequest> decoded = DecodeMetricsRequest(wire);
  if (!decoded.ok()) {
    counters.decode_errors->Add(1);
    AnswerEnvelope envelope;
    envelope.request_id = request.request_id;
    envelope.error = ClassifyStatus(decoded.status());
    envelope.message = decoded.status().message();
    promise.set_value(std::move(envelope));
    return future;
  }
  counters.frames_decoded->Add(1);
  std::promise<AnswerEnvelope> served;
  std::future<AnswerEnvelope> inner = served.get_future();
  served.set_value(endpoint_->HandleMetrics(std::move(decoded).value()));
  return VerifyReply(std::move(inner));
}

std::future<AnswerEnvelope> InProcessTransport::SendTrace(
    TraceRequest request) {
  std::promise<AnswerEnvelope> promise;
  std::future<AnswerEnvelope> future = promise.get_future();
  if (!verify_codec_) {
    promise.set_value(endpoint_->HandleTrace(request));
    return future;
  }
  CodecCounters& counters = endpoint_->codec_counters();
  std::string wire;
  EncodeTraceRequest(request, &wire);
  counters.frames_encoded->Add(1);
  counters.bytes_in->Add(static_cast<long long>(wire.size()));
  Result<TraceRequest> decoded = DecodeTraceRequest(wire);
  if (!decoded.ok()) {
    counters.decode_errors->Add(1);
    AnswerEnvelope envelope;
    envelope.request_id = request.request_id;
    envelope.error = ClassifyStatus(decoded.status());
    envelope.message = decoded.status().message();
    promise.set_value(std::move(envelope));
    return future;
  }
  counters.frames_decoded->Add(1);
  std::promise<AnswerEnvelope> served;
  std::future<AnswerEnvelope> inner = served.get_future();
  served.set_value(endpoint_->HandleTrace(std::move(decoded).value()));
  return VerifyReply(std::move(inner));
}

}  // namespace api
}  // namespace pmw
