#include "api/in_process_transport.h"

#include <string>
#include <utility>

#include "api/codec.h"
#include "common/check.h"

namespace pmw {
namespace api {

InProcessTransport::InProcessTransport(ServerEndpoint* endpoint,
                                       bool verify_codec)
    : endpoint_(endpoint), verify_codec_(verify_codec) {
  PMW_CHECK(endpoint != nullptr);
}

std::future<AnswerEnvelope> InProcessTransport::Send(QueryRequest request) {
  if (!verify_codec_) {
    return endpoint_->Handle(std::move(request));
  }
  // Verify-codec mode: the request crosses the real byte format both
  // ways. Decode failures surface exactly as the socket server would
  // surface them — a typed error envelope, never an exception.
  CodecCounters& counters = endpoint_->codec_counters();
  std::string wire;
  EncodeRequest(request, &wire);
  counters.frames_encoded.fetch_add(1, std::memory_order_relaxed);
  counters.bytes_in.fetch_add(static_cast<long long>(wire.size()),
                              std::memory_order_relaxed);
  Result<QueryRequest> decoded = DecodeRequest(wire);
  if (!decoded.ok()) {
    counters.decode_errors.fetch_add(1, std::memory_order_relaxed);
    AnswerEnvelope envelope;
    envelope.request_id = request.request_id;
    envelope.error = ClassifyStatus(decoded.status());
    envelope.message = decoded.status().message();
    std::promise<AnswerEnvelope> promise;
    promise.set_value(std::move(envelope));
    return promise.get_future();
  }
  counters.frames_decoded.fetch_add(1, std::memory_order_relaxed);
  std::future<AnswerEnvelope> served =
      endpoint_->Handle(std::move(decoded).value());
  return std::async(
      std::launch::deferred,
      [&counters, inner = std::move(served)]() mutable {
        AnswerEnvelope envelope = inner.get();
        std::string reply;
        EncodeAnswer(envelope, &reply);
        counters.frames_encoded.fetch_add(1, std::memory_order_relaxed);
        counters.bytes_out.fetch_add(static_cast<long long>(reply.size()),
                                     std::memory_order_relaxed);
        Result<AnswerEnvelope> decoded_reply = DecodeAnswer(reply);
        PMW_CHECK_MSG(decoded_reply.ok(),
                      "answer failed to round-trip the codec: "
                          << decoded_reply.status().ToString());
        counters.frames_decoded.fetch_add(1, std::memory_order_relaxed);
        return std::move(decoded_reply).value();
      });
}

}  // namespace api
}  // namespace pmw
