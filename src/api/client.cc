#include "api/client.h"

#include <utility>

#include "common/check.h"

namespace pmw {
namespace api {

namespace {
/// Process-unique serial per Client instance: the id namespace.
std::atomic<uint64_t> g_client_serial{0};
}  // namespace

Client::Client(Transport* transport, std::string analyst_id)
    : transport_(transport),
      analyst_id_(std::move(analyst_id)),
      next_request_id_(
          (g_client_serial.fetch_add(1, std::memory_order_relaxed) << 32) |
          1) {
  PMW_CHECK(transport != nullptr);
}

std::future<AnswerEnvelope> Client::CallAsync(
    const std::string& query_name, std::chrono::microseconds deadline) {
  QueryRequest request;
  request.version = kProtocolVersion;
  request.analyst_id = analyst_id_;
  request.request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  // 0 means no deadline; a NEGATIVE budget means "already expired" and
  // must behave like one (the smallest real deadline), not like forever.
  request.deadline_micros =
      deadline.count() > 0
          ? static_cast<uint64_t>(deadline.count())
          : (deadline.count() < 0 ? uint64_t{1} : uint64_t{0});
  request.query_name = query_name;
  return transport_->Send(std::move(request));
}

AnswerEnvelope Client::Call(const std::string& query_name,
                            std::chrono::microseconds deadline) {
  return CallAsync(query_name, deadline).get();
}

std::vector<std::future<AnswerEnvelope>> Client::CallBatchAsync(
    const std::vector<std::string>& query_names,
    std::chrono::microseconds deadline) {
  if (query_names.empty()) return {};
  QueryRequest request;
  request.version = kProtocolVersion;
  request.analyst_id = analyst_id_;
  // Reserve the whole id run: reply i correlates as request_id + i.
  request.request_id = next_request_id_.fetch_add(
      query_names.size(), std::memory_order_relaxed);
  request.deadline_micros =
      deadline.count() > 0
          ? static_cast<uint64_t>(deadline.count())
          : (deadline.count() < 0 ? uint64_t{1} : uint64_t{0});
  request.query_names = query_names;
  return transport_->SendBatch(std::move(request));
}

std::vector<AnswerEnvelope> Client::CallBatch(
    const std::vector<std::string>& query_names,
    std::chrono::microseconds deadline) {
  std::vector<std::future<AnswerEnvelope>> replies =
      CallBatchAsync(query_names, deadline);
  std::vector<AnswerEnvelope> envelopes;
  envelopes.reserve(replies.size());
  for (std::future<AnswerEnvelope>& reply : replies) {
    envelopes.push_back(reply.get());
  }
  return envelopes;
}

AnswerEnvelope Client::Stats() {
  StatsRequest request;
  request.version = kProtocolVersion;
  request.analyst_id = analyst_id_;
  request.request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  return transport_->SendStats(std::move(request)).get();
}

AnswerEnvelope Client::Metrics(uint8_t format) {
  MetricsRequest request;
  request.version = kProtocolVersion;
  request.analyst_id = analyst_id_;
  request.request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  request.format = format;
  return transport_->SendMetrics(std::move(request)).get();
}

AnswerEnvelope Client::Hello(const std::string& auth_token) {
  HelloRequest request;
  request.version = kProtocolVersion;
  request.analyst_id = analyst_id_;
  request.request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  request.auth_token = auth_token;
  return transport_->SendHello(std::move(request)).get();
}

AnswerEnvelope Client::Trace(uint64_t min_total_us, uint32_t max_traces) {
  TraceRequest request;
  request.version = kProtocolVersion;
  request.analyst_id = analyst_id_;
  request.request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  request.min_total_us = min_total_us;
  request.max_traces = max_traces;
  return transport_->SendTrace(std::move(request)).get();
}

}  // namespace api
}  // namespace pmw
