// The versioned request/response envelopes of the pmw::api protocol —
// the one public serving surface in front of the stack
// (api::Client -> Transport -> api::ServerEndpoint -> frontend::Dispatcher).
//
// Queries travel by *catalog name*, not by value: a convex::CmQuery is a
// non-owning (loss, domain) view whose objects live server-side (loss
// families own them), so the protocol references entries of the server's
// api::QueryCatalog. This is also what keeps the wire format independent
// of the loss-family implementation.
//
// Envelopes are plain structs; api/codec.h owns the binary wire layout.

#ifndef PMWCM_API_ENVELOPE_H_
#define PMWCM_API_ENVELOPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "api/error.h"

namespace pmw {
namespace api {

/// Protocol versions this build can speak. A frame's version must lie in
/// [kMinProtocolVersion, kProtocolVersion]; anything newer decodes to
/// kVersionMismatch (the layout is unknowable), anything at or below the
/// current version decodes with unknown fields skipped (forward
/// compatibility for same-major additions).
inline constexpr uint8_t kProtocolVersion = 1;
inline constexpr uint8_t kMinProtocolVersion = 1;

/// One analyst query, self-describing: everything the server needs to
/// admit, order, and answer it.
struct QueryRequest {
  /// Protocol version the client speaks (stamped by api::Client).
  uint8_t version = kProtocolVersion;
  /// Identity the quota ledger charges; also tags per-analyst stats.
  std::string analyst_id;
  /// Client-assigned correlation id, echoed verbatim in the answer (what
  /// lets one connection carry many in-flight requests).
  uint64_t request_id = 0;
  /// Relative deadline in microseconds from server admission; 0 means
  /// none. A request whose deadline passes while queued resolves with
  /// kDeadlineExpired at zero privacy cost.
  uint64_t deadline_micros = 0;
  /// Catalog key of the CM query to answer.
  std::string query_name;
  /// Batched form (api::Client::CallBatch): when non-empty this ONE
  /// frame asks for every named query in order — one AnswerEnvelope
  /// comes back per name, correlated by consecutive request ids
  /// request_id, request_id + 1, ... (the client reserves the id run).
  /// `query_name` is ignored for batched requests. Travels as a new
  /// tagged field inside protocol v1 (decoders that predate it skip it
  /// under the unknown-field rule); cuts per-frame syscall overhead on
  /// the socket transport to one write per batch.
  std::vector<std::string> query_names;
};

/// A typed stats/budget poll (api::Client::Stats): resolves with an
/// AnswerEnvelope whose message is the endpoint's Report() text and
/// whose ServingMeta carries the live remaining-budget view — what a
/// remote analyst dashboards without C++ access to dp::BudgetView.
/// Costs zero privacy: stats never touch the mechanism.
struct StatsRequest {
  uint8_t version = kProtocolVersion;
  std::string analyst_id;
  /// Client-assigned correlation id, echoed in the reply envelope.
  uint64_t request_id = 0;
};

/// A metrics scrape (api::Client::Metrics): resolves with an
/// AnswerEnvelope whose message is the endpoint registry's exposition —
/// Prometheus-style text (format 0) or the ordered-JSON dump (format 1).
/// Costs zero privacy and never blocks the serving writer: every read is
/// a lock-free instrument load.
struct MetricsRequest {
  uint8_t version = kProtocolVersion;
  std::string analyst_id;
  /// Client-assigned correlation id, echoed in the reply envelope.
  uint64_t request_id = 0;
  /// 0 = Prometheus-style text exposition, 1 = ordered-JSON dump. Other
  /// values answer kMalformedRequest (a newer format this build cannot
  /// render).
  uint8_t format = 0;
};
inline constexpr uint8_t kMetricsFormatText = 0;
inline constexpr uint8_t kMetricsFormatJson = 1;

/// A trace poll (api::Client::Trace): resolves with an AnswerEnvelope
/// whose message renders the slowest recorded request span trees with
/// total server-side time >= min_total_us (at most max_traces of them).
/// Zero privacy cost; reads only the bounded trace ring.
struct TraceRequest {
  uint8_t version = kProtocolVersion;
  std::string analyst_id;
  /// Client-assigned correlation id, echoed in the reply envelope.
  uint64_t request_id = 0;
  /// Only traces at least this slow (server-side queue + serve) qualify.
  uint64_t min_total_us = 0;
  /// Upper bound on returned traces (clamped server-side to the ring
  /// capacity).
  uint32_t max_traces = 16;
};

/// The hello/auth exchange (api::Client::Hello): the FIRST frame on a
/// connection to an endpoint that requires authentication. On success
/// the server binds `analyst_id` to the transport connection; every
/// later query frame on that connection must carry the same analyst id,
/// so QuotaManager accounting cannot be spoofed by writing someone
/// else's id into a request. Endpoints without an auth token accept
/// hello frames as a no-op (and bind nothing). Zero privacy cost.
struct HelloRequest {
  uint8_t version = kProtocolVersion;
  /// Identity to bind to this connection.
  std::string analyst_id;
  /// Client-assigned correlation id, echoed in the reply envelope.
  uint64_t request_id = 0;
  /// Shared secret the endpoint compares against its configured token.
  std::string auth_token;
};

/// Operations of the internal shard RPC family (cluster workers). Wire
/// values are stable; append only.
enum class ShardRpcOp : uint8_t {
  /// Installs the worker's slice: domain size, global shard count, and
  /// the owned shard-group range. Resets state to uniform.
  kConfigure = 1,
  /// MW phase 1 over the owned shards (payoff slice + eta); the answer
  /// doubles are the per-shard local maxima, shard order.
  kReweigh = 2,
  /// MW phase 2 (global max in); answer doubles are the per-shard
  /// subtree sums, shard order.
  kPartials = 3,
  /// MW phase 3 (normalizer total in); empty answer.
  kNormalize = 4,
  /// Strictly-positive entries of [snapshot_lo, snapshot_hi): answer
  /// doubles are interleaved (index, value) pairs — exact for any
  /// universe this repo can hold (indices < 2^53).
  kSnapshot = 5,
  /// Installs a checkpointed slice on a configured worker: `payoff`
  /// carries the strictly-positive entries of the owned domain range as
  /// interleaved (index, value) pairs (a kSnapshot answer round-tripped,
  /// so the restored slice is byte-identical), and `update_seq` is the
  /// sequence number the checkpoint was taken at — the worker's applied
  /// count afterwards. Lets recovery replay only the log suffix since
  /// the checkpoint instead of every update ever committed.
  kRestore = 6,
};

/// One internal shard RPC (front-door combiner -> shard-group worker).
/// Never crosses the public surface: the front door's ServerEndpoint
/// answers these with kMalformedRequest; only cluster::ShardWorker
/// serves them. Replies travel as ordinary AnswerEnvelope frames (the
/// payload in `answer`), so the client-side correlation machinery is
/// shared with analyst traffic.
struct ShardRpcRequest {
  uint8_t version = kProtocolVersion;
  /// Client-assigned correlation id, echoed in the reply envelope.
  uint64_t request_id = 0;
  ShardRpcOp op = ShardRpcOp::kConfigure;
  /// Monotone update sequence number (commit order); the worker rejects
  /// out-of-order phases with a typed error, which is how a half-applied
  /// update is detected and replayed after a crash.
  uint64_t update_seq = 0;
  /// kConfigure: the global partition this worker slices.
  uint32_t domain_size = 0;
  uint32_t num_shards = 0;
  /// kConfigure: owned shard indices [group_lo, group_hi) of the global
  /// partition (contiguous, so the owned domain slice is contiguous).
  uint32_t group_lo = 0;
  uint32_t group_hi = 0;
  /// kReweigh: the MW learning rate (the signed exponent).
  double eta = 0.0;
  /// kPartials: the writer's folded global max.
  double global_max = 0.0;
  /// kNormalize: the writer's fixed-tree normalizer total.
  double total = 0.0;
  /// kSnapshot: requested domain range.
  uint32_t snapshot_lo = 0;
  uint32_t snapshot_hi = 0;
  /// kReweigh: the payoff slice covering the owned domain range, in
  /// domain order.
  std::vector<double> payoff;
};

/// Serving metadata riding back with every answer: where in the
/// mechanism's life the answer was produced and what budget remains.
struct ServingMeta {
  /// Hypothesis version (epoch) the answer was served at.
  uint64_t epoch = 0;
  /// True when this query triggered an oracle call + MW update (a hard
  /// round, the privacy-relevant event); false for free kBottom answers.
  bool hard_round = false;
  /// True when the query's plan came from the cross-batch plan cache.
  bool cache_hit = false;
  /// Hard rounds left before the sparse vector halts (-1 when unknown,
  /// e.g. on errors minted before admission).
  long long hard_rounds_remaining = -1;
  /// Basic-composition privacy spent so far, the remaining-budget view
  /// an analyst dashboards.
  double epsilon_spent = 0.0;
  double delta_spent = 0.0;
  /// Domain shards the server's hypothesis is partitioned into (0 when
  /// unknown, e.g. on errors minted before admission). Purely
  /// informational: sharding never changes answers.
  uint32_t shards = 0;
  /// Server-side latency split, appended to the v1 meta field (old
  /// decoders skip the tail under the codec's unknown-field rules): how
  /// long the request waited in the dispatcher queue before its batch
  /// formed, and how long its batch spent inside the serving call. Both 0
  /// when unknown (errors minted before the queue, stats polls). What
  /// lets a remote harness separate queue wait from serve time without
  /// reaching into frontend:: internals.
  uint64_t queue_wait_us = 0;
  uint64_t serve_us = 0;
  /// Server-side span breakdown of serve_us, appended after the latency
  /// split within v1 (older decoders skip the tail): the batch's
  /// parallel-prepare wall time, this query's private oracle solve and
  /// MW-update halves, and its whole commit call. All 0 when unknown
  /// (errors, stats polls, or a server with record_spans off). What lets
  /// a remote harness attribute its observed tail latency to named
  /// serving phases without a trace RPC.
  uint64_t prepare_us = 0;
  uint64_t solve_us = 0;
  uint64_t mw_us = 0;
  uint64_t commit_us = 0;
};

/// The reply to one QueryRequest.
struct AnswerEnvelope {
  uint8_t version = kProtocolVersion;
  /// Echo of QueryRequest::request_id (0 when the request could not be
  /// decoded far enough to recover it).
  uint64_t request_id = 0;
  /// kOk, or the taxonomy code explaining why `answer` is empty.
  ErrorCode error = ErrorCode::kOk;
  /// Human-readable error detail (empty on success).
  std::string message;
  /// The released theta (empty on error).
  std::vector<double> answer;
  ServingMeta meta;

  bool ok() const { return error == ErrorCode::kOk; }
  /// The envelope's error as a Status (Ok for successful answers).
  Status status() const { return ToStatus(error, message); }
};

}  // namespace api
}  // namespace pmw

#endif  // PMWCM_API_ENVELOPE_H_
