// The unified error taxonomy of the pmw::api protocol.
//
// Three layers of the stack mint recoverable errors today — the mechanism
// (core::PmwCm: halted sparse vector, spent k-query budget), the serving
// front-end (frontend::QuotaManager / Dispatcher: quota and shutdown
// rejections), and the solvers underneath (invalid arguments,
// non-convergence). Each historically spoke its own dialect of
// common::Status strings. The wire protocol needs ONE vocabulary that
// (a) survives a round trip through the codec losslessly and (b) maps
// every Status the lower layers emit to exactly one typed code, so a
// remote client can switch on the code instead of grepping messages.
//
// The mapping is made lossless by a canonical message form: MakeStatus
// tags the message with "[kCodeName] " and ClassifyStatus recovers the
// exact code from the tag. Untagged legacy statuses (whatever the lower
// layers still emit) fall back to a documented, total classification —
// every StatusCode lands on a taxonomy code, never on "unknown".
//
// This header sits below frontend/ in the build graph (it depends only on
// common/) so admission control can mint taxonomy errors without a
// dependency cycle; the rest of the api layer (codec, transports,
// endpoints) lives above frontend/.

#ifndef PMWCM_API_ERROR_H_
#define PMWCM_API_ERROR_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace pmw {
namespace api {

/// The protocol's error vocabulary. Values are wire-stable: they are
/// encoded into AnswerEnvelope frames, so existing entries must never be
/// renumbered (append only).
enum class ErrorCode : uint16_t {
  kOk = 0,
  /// A front-door query quota (per-analyst or global) rejected the
  /// request before it reached the mechanism. Zero privacy cost.
  kQuotaExceeded = 1,
  /// The mechanism's k-query budget is spent.
  kBudgetExhausted = 2,
  /// The sparse vector exhausted its T hard rounds (mechanism halted, or
  /// admission predicted the halt from the ledger).
  kHalted = 3,
  /// The request's deadline passed before it was served. Zero privacy
  /// cost: expiry is detected before the mechanism sees the query.
  kDeadlineExpired = 4,
  /// The request frame failed to decode (bad framing, truncated or
  /// corrupt fields) or carried invalid arguments.
  kMalformedRequest = 5,
  /// The frame's protocol version is outside the range this endpoint
  /// speaks.
  kVersionMismatch = 6,
  /// The request named a query the server's catalog does not hold.
  kUnknownQuery = 7,
  /// The endpoint (or its dispatcher) is shut down.
  kShutdown = 8,
  /// An inner solver failed to converge.
  kNotConverged = 9,
  /// The transport failed (broken socket, closed channel).
  kTransportError = 10,
  kInternal = 11,
  /// A shard-group worker is unreachable (connect refused, RPC timeout,
  /// or a dropped connection the combiner's bounded reconnect/replay
  /// could not recover). Zero additional privacy cost: the hypothesis is
  /// left unchanged.
  kShardUnavailable = 12,
  /// The connection has not completed the hello/auth exchange the
  /// endpoint requires, presented a bad token, or sent a request whose
  /// analyst id differs from the one bound to the connection.
  kAuthRequired = 13,
};

/// The highest assigned ErrorCode — THE one place to bump when appending
/// a code (the name switch in error.cc fails to compile if forgotten;
/// the codec and the tag parser both derive their ranges from this).
inline constexpr ErrorCode kMaxErrorCode = ErrorCode::kAuthRequired;

/// Stable name, e.g. "kQuotaExceeded" (also the canonical message tag).
const char* ErrorCodeName(ErrorCode code);

/// The legacy StatusCode a taxonomy code degrades to, chosen so that
/// pre-protocol callers switching on StatusCode keep working (quota
/// rejections stay kResourceExhausted, halts stay kHalted, ...).
StatusCode LegacyCode(ErrorCode code);

/// Mints a Status in canonical form: code LegacyCode(code), message
/// "[kCodeName] detail". ClassifyStatus recovers `code` exactly.
Status MakeStatus(ErrorCode code, const std::string& detail);

/// Total classification of any Status into the taxonomy. Tagged
/// (MakeStatus-minted) messages map back exactly; untagged legacy
/// statuses classify by (code, message) as documented in error.cc.
ErrorCode ClassifyStatus(const Status& status);

/// Rebuilds a Status from an (ErrorCode, message) pair that crossed the
/// wire. kOk yields Status::Ok(); the message travels unchanged, so
/// Classify(ToStatus(c, m)) == c whenever m is canonical, and the
/// envelope's explicit code field keeps it lossless even when not.
Status ToStatus(ErrorCode code, std::string message);

}  // namespace api
}  // namespace pmw

#endif  // PMWCM_API_ERROR_H_
