// Binary wire codec for the pmw::api envelopes.
//
// Frame layout (all integers little-endian):
//
//   u32  payload_len          length of everything after this field
//   ---- payload ----
//   u16  magic = 0x4d50       "PM"
//   u8   version              protocol version of the sender
//   u8   msg_type             1 = QueryRequest, 2 = AnswerEnvelope,
//                             3 = StatsRequest, 4 = MetricsRequest,
//                             5 = TraceRequest, 6 = HelloRequest,
//                             7 = ShardRpcRequest
//   field*                    tagged fields, any order
//
//   field := u8 tag | u32 len | len bytes
//
// Forward compatibility: decoders skip fields with unknown tags, so a
// same-version peer may append fields without breaking older builds. A
// frame whose version is *newer* than kProtocolVersion is rejected with
// kVersionMismatch — its layout beyond the fixed header is unknowable —
// and one older than kMinProtocolVersion likewise (nothing speaks it).
// Every other malformation (bad magic, truncated field, overlong length,
// wrong scalar width) decodes to a typed kMalformedRequest error; decode
// never crashes on adversarial bytes (tests/api_codec_test.cc fuzzes
// truncations, corruptions, and future-version frames).

#ifndef PMWCM_API_CODEC_H_
#define PMWCM_API_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "api/envelope.h"
#include "common/result.h"

namespace pmw {
namespace api {

/// Upper bound on payload_len: protects decoders (and the fuzz test's
/// allocator) from hostile length prefixes. Generous for real traffic —
/// a 1M-coordinate answer is ~8 MiB < 16 MiB.
inline constexpr size_t kMaxFramePayload = size_t{1} << 24;

inline constexpr uint8_t kMsgTypeRequest = 1;
inline constexpr uint8_t kMsgTypeAnswer = 2;
inline constexpr uint8_t kMsgTypeStats = 3;
inline constexpr uint8_t kMsgTypeMetrics = 4;
inline constexpr uint8_t kMsgTypeTrace = 5;
inline constexpr uint8_t kMsgTypeHello = 6;
inline constexpr uint8_t kMsgTypeShardRpc = 7;

/// Appends one complete frame (length prefix included) to *out. A
/// request with a non-empty query_names vector encodes the batched
/// tagged field (one frame, many names) — still a v1 frame that older
/// same-version decoders skip field-wise.
void EncodeRequest(const QueryRequest& request, std::string* out);
void EncodeAnswer(const AnswerEnvelope& envelope, std::string* out);
void EncodeStatsRequest(const StatsRequest& request, std::string* out);
void EncodeMetricsRequest(const MetricsRequest& request, std::string* out);
void EncodeTraceRequest(const TraceRequest& request, std::string* out);
void EncodeHelloRequest(const HelloRequest& request, std::string* out);
void EncodeShardRpcRequest(const ShardRpcRequest& request, std::string* out);

/// Stream framing: is a complete frame sitting at the front of `buffer`?
enum class FrameStatus {
  kFrame,     // yes; *total_size is its full byte count
  kNeedMore,  // prefix of a valid frame; read more bytes
  kMalformed  // length prefix exceeds kMaxFramePayload; drop connection
};
FrameStatus ExtractFrame(std::string_view buffer, size_t* total_size);

/// Message type of a complete frame (0 when the header is malformed).
uint8_t PeekMsgType(std::string_view frame);

/// Decode one complete frame (as delimited by ExtractFrame). Errors are
/// typed: kVersionMismatch for frames outside [kMinProtocolVersion,
/// kProtocolVersion], kMalformedRequest for everything else.
Result<QueryRequest> DecodeRequest(std::string_view frame);
Result<AnswerEnvelope> DecodeAnswer(std::string_view frame);
Result<StatsRequest> DecodeStatsRequest(std::string_view frame);
Result<MetricsRequest> DecodeMetricsRequest(std::string_view frame);
Result<TraceRequest> DecodeTraceRequest(std::string_view frame);
Result<HelloRequest> DecodeHelloRequest(std::string_view frame);
Result<ShardRpcRequest> DecodeShardRpcRequest(std::string_view frame);

}  // namespace api
}  // namespace pmw

#endif  // PMWCM_API_CODEC_H_
