// api::Client — what analyst code holds: an identity bound to a
// transport, with correlation ids and protocol versioning handled.
//
//   api::Client client(&transport, "analyst-7");
//   api::AnswerEnvelope reply = client.Call("lipschitz/3");
//   if (reply.ok()) { use reply.answer; }  // else switch on reply.error
//
// Call() is synchronous; CallAsync() returns the envelope future so one
// client can keep many requests in flight (the transports pipeline).
// Thread-safe: sessions are cheap, but a single Client may also be
// shared across threads.

#ifndef PMWCM_API_CLIENT_H_
#define PMWCM_API_CLIENT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "api/envelope.h"
#include "api/transport.h"

namespace pmw {
namespace api {

class Client {
 public:
  /// `transport` must outlive the client.
  Client(Transport* transport, std::string analyst_id);

  /// Asks the named catalog query; blocks for the reply. A non-zero
  /// `deadline` bounds how long the request may wait server-side before
  /// resolving kDeadlineExpired at zero privacy cost.
  AnswerEnvelope Call(const std::string& query_name,
                      std::chrono::microseconds deadline =
                          std::chrono::microseconds{0});

  /// Fire-and-collect variant; the future resolves with the envelope.
  /// Collect with get() (or wait()): over the in-process transport the
  /// future is DEFERRED (the envelope is assembled on the collecting
  /// thread), so wait_for/wait_until report future_status::deferred
  /// rather than ready — never poll with them.
  std::future<AnswerEnvelope> CallAsync(
      const std::string& query_name,
      std::chrono::microseconds deadline = std::chrono::microseconds{0});

  /// Batched wire call: asks every named query with ONE request frame
  /// (the socket transport pays one write syscall for the whole batch)
  /// and blocks for all replies — one envelope per name, positionally.
  /// The names occupy consecutive request ids, reserved here, so replies
  /// correlate even when pipelined with other calls.
  std::vector<AnswerEnvelope> CallBatch(
      const std::vector<std::string>& query_names,
      std::chrono::microseconds deadline = std::chrono::microseconds{0});

  /// Fire-and-collect variant of CallBatch (same deferred-future caveat
  /// as CallAsync over the in-process transport).
  std::vector<std::future<AnswerEnvelope>> CallBatchAsync(
      const std::vector<std::string>& query_names,
      std::chrono::microseconds deadline = std::chrono::microseconds{0});

  /// Typed stats/budget poll (zero privacy cost): the reply's message is
  /// the server's Report() text and its meta carries the live
  /// remaining-budget view — hard rounds left, eps/delta spent, epoch,
  /// shard count. What a remote analyst dashboards instead of the
  /// C++-only accessors.
  AnswerEnvelope Stats();

  /// Metrics scrape (zero privacy cost): the reply's message is the
  /// server registry's Prometheus-style text exposition
  /// (kMetricsFormatText) or ordered-JSON dump (kMetricsFormatJson) —
  /// every layer's counters, gauges, and latency histograms in one
  /// frame. What a scraper sidecar polls.
  AnswerEnvelope Metrics(uint8_t format = kMetricsFormatText);

  /// Trace poll (zero privacy cost): the reply's message renders the
  /// server's slowest recorded request span trees with
  /// total_us >= min_total_us, at most max_traces of them.
  AnswerEnvelope Trace(uint64_t min_total_us = 0, uint32_t max_traces = 16);

  /// Hello/auth exchange: binds this client's analyst id to the
  /// transport's CONNECTION using the shared token. Must be the first
  /// call on a stream transport to an endpoint with auth configured —
  /// every other call answers kAuthRequired until it succeeds. A no-op
  /// success on open endpoints and the in-process transport.
  AnswerEnvelope Hello(const std::string& auth_token);

  const std::string& analyst_id() const { return analyst_id_; }

 private:
  Transport* transport_;
  std::string analyst_id_;
  /// Correlation ids are namespaced per client instance (a
  /// process-unique serial in the high 32 bits, a sequence number in the
  /// low 32): many Clients may share one correlating transport (a
  /// SocketTransport connection) without id collisions.
  std::atomic<uint64_t> next_request_id_;
};

}  // namespace api
}  // namespace pmw

#endif  // PMWCM_API_CLIENT_H_
