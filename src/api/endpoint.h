// api::ServerEndpoint — the server half of the protocol, and the one
// front door of the serving stack.
//
//   transport --QueryRequest--> ServerEndpoint::Handle
//     --resolve catalog name--> frontend::Dispatcher (admission, queue,
//     batching, single-writer serve) --> AnswerEnvelope back out
//
// The endpoint owns the whole serving stack behind it: the ERM oracle,
// the sharded serve::PmwService, the frontend::QuotaManager, the
// epoch-keyed PlanCache, and the Dispatcher thread. Handle() is
// thread-safe (any number of transports / connection handlers may call
// it); everything stateful funnels through the dispatcher's MPSC queue,
// which preserves the PR 2/3 transcript guarantee end to end — replaying
// the endpoint's recorded arrival log through sequential core::PmwCm
// reproduces answers and the privacy ledger bit-identically
// (tests/api_test.cc proves it through a real socket).

#ifndef PMWCM_API_ENDPOINT_H_
#define PMWCM_API_ENDPOINT_H_

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/catalog.h"
#include "api/envelope.h"
#include "data/dataset.h"
#include "erm/oracle.h"
#include "frontend/dispatcher.h"
#include "frontend/plan_cache.h"
#include "frontend/quota_manager.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/pmw_service.h"

namespace pmw {
namespace api {

/// Which single-query ERM oracle A' the endpoint runs. Examples select by
/// kind so they never include erm/ headers; tests may inject an external
/// oracle through the second constructor instead.
enum class OracleKind {
  kNoisyGradient,  // BST14-style noisy gradient descent (the default)
  kGlm,            // JT14 route for generalized linear models
  kNonPrivate,     // baseline/testing oracle (no DP noise)
};

/// Everything behind the front door, in one bag. `mechanism.scale` must
/// cover the catalog's scale() bound, exactly as with a bare PmwCm.
/// `serve.num_shards` is the hypothesis-sharding knob: > 1 partitions
/// the MW hypothesis into domain shards served behind this same front
/// door (ServingMeta reports the count back to clients); transcripts are
/// bit-identical at every setting.
struct ServerOptions {
  core::PmwOptions mechanism;
  serve::ServeOptions serve;
  frontend::QuotaOptions quota;
  frontend::DispatcherOptions dispatcher;
  OracleKind oracle = OracleKind::kNoisyGradient;
  bool enable_plan_cache = true;
  /// Record (analyst, client request id, query name) per committed
  /// request, in commit order — the replayable transcript log.
  bool record_arrival_log = false;
  /// Record per-request span trees into a bounded ring, served by the
  /// kTraceRequest RPC. Strictly out-of-transcript: the dispatcher
  /// publishes each tree AFTER resolving the request's promise, so
  /// tracing never changes answers, the ledger, or commit order.
  bool enable_tracing = true;
  /// Trace ring slots (slot = request id % capacity, deterministic).
  size_t trace_capacity = 256;
  /// Shared secret of the hello/auth exchange. Empty (the default) means
  /// the endpoint is open: hello frames succeed as no-ops and requests
  /// need no prior hello — the trusted same-host story. Non-empty means
  /// every socket connection must open with a hello carrying this token;
  /// the connection handler then binds that hello's analyst id to the
  /// connection and rejects any frame speaking as someone else with
  /// kAuthRequired (zero privacy cost) — which is what makes
  /// QuotaManager accounting unspoofable over TCP.
  std::string auth_token;
  /// Latency/goodput objectives behind the scrape-time SLO burn gauges
  /// (obs/slo.h): each metrics scrape refreshes
  /// pmw_slo_burn_ratio{endpoint=...} from the registry's histograms
  /// before rendering. A 0 target disables its gauge.
  double slo_queue_wait_p99_us = 0.0;
  double slo_serve_p99_us = 0.0;
  /// Median per-batch goodput target, queries/second (burn counts how
  /// far BELOW target the observed median falls).
  double slo_goodput_qps = 0.0;
};

/// Codec/transport traffic counters, incremented by the transports and
/// server loops that move this endpoint's frames (the endpoint itself
/// never encodes). Handles into the endpoint's metrics registry
/// (pmw_api_*), so connection threads increment lock-free and one scrape
/// covers the whole stack.
struct CodecCounters {
  obs::Counter* frames_encoded = nullptr;
  obs::Counter* frames_decoded = nullptr;
  obs::Counter* decode_errors = nullptr;
  obs::Counter* bytes_in = nullptr;
  obs::Counter* bytes_out = nullptr;

  /// Resolves the five handles in `registry`; called once by the owning
  /// endpoint before any transport can observe the struct.
  void BindTo(obs::Registry* registry);
};

class ServerEndpoint {
 public:
  /// `dataset` and `catalog` must outlive the endpoint; the oracle is
  /// constructed from options.oracle and owned. The dispatcher thread
  /// starts immediately.
  ServerEndpoint(const data::Dataset* dataset, const QueryCatalog* catalog,
                 const ServerOptions& options, uint64_t seed);

  /// Test/bench constructor injecting an external oracle (not owned;
  /// options.oracle is ignored).
  ServerEndpoint(const data::Dataset* dataset, erm::Oracle* oracle,
                 const QueryCatalog* catalog, const ServerOptions& options,
                 uint64_t seed);

  /// Shutdown().
  ~ServerEndpoint();

  ServerEndpoint(const ServerEndpoint&) = delete;
  ServerEndpoint& operator=(const ServerEndpoint&) = delete;

  /// Serves one decoded request: version gate, catalog resolution,
  /// admission via the quota manager, then the dispatcher queue. Never
  /// blocks on serving (only on queue backpressure); the returned future
  /// resolves with the complete envelope — typed taxonomy error or
  /// answer + serving metadata. Thread-safe.
  ///
  /// The future is DEFERRED (std::async deferred adapter): envelope
  /// assembly runs on the thread that get()s/wait()s it, and
  /// wait_for/wait_until report future_status::deferred, never ready —
  /// collect with get(), don't poll.
  std::future<AnswerEnvelope> Handle(QueryRequest request);

  /// Serves a possibly-batched request: with query_names empty this is
  /// exactly {Handle(request)}; otherwise one sub-request per name is
  /// submitted in order (so a batch occupies consecutive arrival slots
  /// per its own names, interleaving with other analysts at the queue)
  /// at consecutive request ids request_id, request_id + 1, ... — the
  /// correlation contract of the batched wire call. Thread-safe.
  std::vector<std::future<AnswerEnvelope>> HandleBatch(QueryRequest request);

  /// Serves a typed stats/budget poll: the reply envelope's message is
  /// Report() and its meta carries the live remaining-budget view
  /// (hard rounds left, eps/delta spent, epoch, shard count). Zero
  /// privacy cost — stats never touch the mechanism. Thread-safe; may
  /// be called while the writer keeps serving (all reads go through
  /// locks or atomics).
  AnswerEnvelope HandleStats(const StatsRequest& request);

  /// Serves a metrics scrape: the reply's message is the registry's
  /// Prometheus-style text exposition (format 0) or ordered-JSON dump
  /// (format 1). Zero privacy cost; never blocks the serving writer
  /// (every read is a lock-free instrument load). Thread-safe.
  AnswerEnvelope HandleMetrics(const MetricsRequest& request);

  /// Serves a trace poll: the reply's message renders the slowest
  /// recorded span trees with total_us >= min_total_us (at most
  /// max_traces). Zero privacy cost. Thread-safe.
  AnswerEnvelope HandleTrace(const TraceRequest& request);

  /// Serves the hello/auth exchange: validates the token against
  /// options.auth_token (kAuthRequired envelope on mismatch or missing
  /// analyst id) and answers Ok when the connection may bind the
  /// analyst. The CONNECTION handler owns the actual binding (the
  /// endpoint is connection-agnostic); see FrameSink::ConnState. On an
  /// open endpoint (empty token) hello always succeeds. Thread-safe,
  /// zero privacy cost.
  AnswerEnvelope HandleHello(const HelloRequest& request);

  /// True when options.auth_token is set: connection handlers must
  /// demand a successful hello before serving any other frame.
  bool requires_hello() const { return !options_.auth_token.empty(); }

  /// Handle + wait: for transports and tests that want the envelope now.
  AnswerEnvelope HandleSync(QueryRequest request);

  /// Stops accepting work, drains the queue, joins the dispatcher.
  /// Idempotent.
  void Shutdown();

  /// One committed request, in commit (arrival) order. Complete only
  /// after Shutdown; empty unless options.record_arrival_log.
  struct ArrivalRecord {
    std::string analyst_id;
    uint64_t client_request_id = 0;
    std::string query_name;
  };
  std::vector<ArrivalRecord> ArrivalLog() const;

  serve::PmwService& service() { return *service_; }
  const serve::PmwService& service() const { return *service_; }
  frontend::QuotaManager& quota() { return *quota_; }
  const QueryCatalog& catalog() const { return *catalog_; }
  CodecCounters& codec_counters() { return codec_counters_; }
  /// The endpoint's metrics registry (serve + frontend + api layers all
  /// record into this one). Scrape-safe from any thread.
  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }
  /// The trace ring (null when options.enable_tracing is false).
  obs::TraceRecorder* trace_recorder() { return traces_.get(); }

  /// Front-door stats: the DispatcherStats table extended with this
  /// endpoint's codec/transport counters, plus the serving report.
  std::string Report() const;

 private:
  AnswerEnvelope Finish(uint8_t version, uint64_t request_id,
                        uint64_t dispatch_id, frontend::Served served);
  std::future<AnswerEnvelope> Ready(AnswerEnvelope envelope);

  const QueryCatalog* catalog_;
  const ServerOptions options_;
  /// Declared before service_/dispatcher_: every layer below records
  /// into this registry, so it must outlive them all.
  obs::Registry registry_;
  /// Null when options.enable_tracing is false; outlives the dispatcher
  /// that publishes into it.
  std::unique_ptr<obs::TraceRecorder> traces_;
  std::unique_ptr<erm::Oracle> owned_oracle_;  // null when injected
  std::unique_ptr<serve::PmwService> service_;
  std::unique_ptr<frontend::QuotaManager> quota_;
  std::unique_ptr<frontend::PlanCache> plan_cache_;  // null when disabled
  CodecCounters codec_counters_;
  mutable std::mutex arrivals_mutex_;
  std::unordered_map<uint64_t, ArrivalRecord> arrivals_;  // by dispatch id
  /// Last stack member: its thread starts consuming in the constructor.
  std::unique_ptr<frontend::Dispatcher> dispatcher_;
};

}  // namespace api
}  // namespace pmw

#endif  // PMWCM_API_ENDPOINT_H_
