// The ONE stream-framing path of the pmw::api wire protocol, shared by
// every deployment that puts codec frames on a byte stream: the
// Unix-domain SocketServer, the TcpServer, their client transports, and
// the cluster shard-group worker. Framing policy (length-prefix walk,
// malformed-stream handling, reply write-back order) lives here once so
// adversarial-bytes behavior cannot diverge between Unix and TCP — the
// property tests/api_codec_test.cc pins is transport-independent.
//
//   FrameServer                       FrameSink (per deployment)
//   listener fd -> accept loop ->     OnFrame(bytes, conn state) decides
//   per-connection reader thread      what the frames MEAN: the analyst
//   (frame walk -> sink) + writer     front door dispatches to a
//   thread (encode replies as         ServerEndpoint; a shard-group
//   their futures resolve)            worker serves the internal RPCs
//
// Per-connection identity rides in FrameSink::ConnState: the hello/auth
// exchange binds an analyst id to the connection, and the sink enforces
// that every later frame speaks as that analyst (endpoint.h documents
// the policy). The state is owned by the connection's reader thread —
// sinks never need their own locking for it.

#ifndef PMWCM_API_FRAME_SERVER_H_
#define PMWCM_API_FRAME_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/codec.h"
#include "api/envelope.h"
#include "common/result.h"

namespace pmw {
namespace api {

// --- low-level stream helpers (shared with the client transports) ---------

/// send(2) until done; false on any unrecoverable error. MSG_NOSIGNAL:
/// a peer that hung up must surface as EPIPE, not a process-killing
/// SIGPIPE.
bool WriteAll(int fd, const char* data, size_t size);

/// Appends up to 64 KiB to *buffer; returns bytes read (0 on orderly
/// EOF, -1 on error).
ssize_t ReadSome(int fd, std::string* buffer);

/// Walks every complete frame at the front of `buffer`, invoking
/// on_frame(frame_bytes) per frame; returns the bytes consumed (trim
/// once, after the walk) and leaves the terminal framing state in
/// *final_status (kNeedMore: wait for bytes; kMalformed: drop the
/// connection).
size_t WalkFrames(std::string_view buffer, FrameStatus* final_status,
                  const std::function<void(std::string_view)>& on_frame);

// --- listener / connector helpers -----------------------------------------

/// Bound + listening Unix-domain socket fd (unlinks a stale path first).
Result<int> ListenUnix(const std::string& path);

/// Bound + listening TCP socket fd on `host` (IPv4 dotted-quad; no DNS —
/// cluster topology is explicit addresses). Port 0 selects an ephemeral
/// port; *bound_port receives the actual one either way.
Result<int> ListenTcp(const std::string& host, uint16_t port,
                      uint16_t* bound_port);

/// Connected stream fds, same address conventions.
Result<int> ConnectUnix(const std::string& path);
Result<int> ConnectTcp(const std::string& host, uint16_t port);

// --- the shared frame server ----------------------------------------------

/// What a FrameServer deployment does with decoded-enough frames.
/// OnFrame runs on the connection's reader thread; replies it pushes are
/// written back in FIFO order as their futures resolve.
class FrameSink {
 public:
  /// Connection-scoped identity state, owned by the reader thread.
  struct ConnState {
    /// True once a hello frame was accepted on this connection.
    bool hello_ok = false;
    /// The analyst id the hello bound; every later frame must match.
    std::string bound_analyst;
  };

  virtual ~FrameSink() = default;

  /// Handles one complete frame; pushes zero or more reply futures (one
  /// answer frame is written per future, in push order).
  virtual void OnFrame(std::string_view frame, ConnState* conn,
                       std::vector<std::future<AnswerEnvelope>>* replies) = 0;

  /// Byte/error accounting hooks (the front door feeds CodecCounters;
  /// the worker's defaults drop them).
  virtual void OnBytesIn(long long bytes) { (void)bytes; }
  virtual void OnReplyEncoded(long long bytes) { (void)bytes; }
  virtual void OnDecodeError() {}
};

/// Accept loop + per-connection reader/writer threads over an
/// already-listening socket. Address family agnostic: SocketServer hands
/// it a Unix listener, TcpServer and the cluster worker a TCP one.
class FrameServer {
 public:
  /// `sink` must outlive the server.
  explicit FrameServer(FrameSink* sink);
  ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Takes ownership of `listen_fd` (bound + listening) and starts
  /// accepting.
  void Serve(int listen_fd);

  /// Stops accepting, closes every connection after its pending replies
  /// are written, joins all threads. Idempotent.
  void Shutdown();

 private:
  struct Connection {
    int fd = -1;
    std::thread reader;
    std::thread writer;
    std::mutex mutex;
    std::condition_variable cv;
    /// Reply futures in request-arrival order (the order the dispatcher
    /// resolves them).
    std::deque<std::future<AnswerEnvelope>> pending;
    bool reader_done = false;
    /// Live threads (reader + writer); 0 means the connection is over
    /// and the acceptor may reap it.
    std::atomic<int> active{2};
    FrameSink::ConnState state;
  };

  void AcceptLoop();
  void ReadLoop(Connection* connection);
  void WriteLoop(Connection* connection);
  /// Joins, closes, and erases connections whose threads have exited —
  /// a long-lived daemon must not accumulate one fd + two threads per
  /// departed client until Shutdown.
  void ReapFinished();

  FrameSink* sink_;
  int listen_fd_ = -1;
  std::atomic<bool> shutdown_{false};
  std::mutex shutdown_mutex_;  // serializes Shutdown callers
  std::thread acceptor_;
  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;
};

}  // namespace api
}  // namespace pmw

#endif  // PMWCM_API_FRAME_SERVER_H_
