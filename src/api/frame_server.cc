#include "api/frame_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace pmw {
namespace api {

// ---------------------------------------------------------------------------
// Stream helpers
// ---------------------------------------------------------------------------

bool WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n > 0) {
      written += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

ssize_t ReadSome(int fd, std::string* buffer) {
  char chunk[65536];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n > 0) buffer->append(chunk, static_cast<size_t>(n));
    return n;
  }
}

size_t WalkFrames(std::string_view buffer, FrameStatus* final_status,
                  const std::function<void(std::string_view)>& on_frame) {
  size_t offset = 0;
  size_t frame_size = 0;
  while ((*final_status = ExtractFrame(buffer.substr(offset), &frame_size)) ==
         FrameStatus::kFrame) {
    on_frame(buffer.substr(offset, frame_size));
    offset += frame_size;
  }
  return offset;
}

// ---------------------------------------------------------------------------
// Listener / connector helpers
// ---------------------------------------------------------------------------

namespace {

Status FillUnixAddress(const std::string& path, sockaddr_un* address) {
  std::memset(address, 0, sizeof(*address));
  address->sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(address->sun_path)) {
    return MakeStatus(ErrorCode::kTransportError,
                      "socket path empty or longer than sun_path: " + path);
  }
  std::memcpy(address->sun_path, path.data(), path.size());
  return Status::Ok();
}

Status FillTcpAddress(const std::string& host, uint16_t port,
                      sockaddr_in* address) {
  std::memset(address, 0, sizeof(*address));
  address->sin_family = AF_INET;
  address->sin_port = htons(port);
  // Explicit dotted-quad only — cluster topology is concrete addresses,
  // and a resolver in the serving path would add a blocking dependency.
  if (::inet_pton(AF_INET, host.c_str(), &address->sin_addr) != 1) {
    return MakeStatus(ErrorCode::kTransportError,
                      "not an IPv4 dotted-quad address: " + host);
  }
  return Status::Ok();
}

}  // namespace

Result<int> ListenUnix(const std::string& path) {
  sockaddr_un address;
  Status addressed = FillUnixAddress(path, &address);
  if (!addressed.ok()) return addressed;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return MakeStatus(ErrorCode::kTransportError,
                      "socket() failed: " + std::string(strerror(errno)));
  }
  ::unlink(path.c_str());  // a stale path from a crashed predecessor
  if (::bind(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    const std::string why = strerror(errno);
    ::close(fd);
    return MakeStatus(ErrorCode::kTransportError,
                      "bind/listen on " + path + " failed: " + why);
  }
  return fd;
}

Result<int> ListenTcp(const std::string& host, uint16_t port,
                      uint16_t* bound_port) {
  sockaddr_in address;
  Status addressed = FillTcpAddress(host, port, &address);
  if (!addressed.ok()) return addressed;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return MakeStatus(ErrorCode::kTransportError,
                      "socket() failed: " + std::string(strerror(errno)));
  }
  // Restarted workers must be able to rebind their advertised port while
  // old connections linger in TIME_WAIT — that restart path is the whole
  // recovery story.
  const int enable = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
          0 ||
      ::listen(fd, 64) != 0) {
    const std::string why = strerror(errno);
    ::close(fd);
    return MakeStatus(ErrorCode::kTransportError,
                      "bind/listen on " + host + ":" + std::to_string(port) +
                          " failed: " + why);
  }
  if (bound_port != nullptr) {
    sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
        0) {
      const std::string why = strerror(errno);
      ::close(fd);
      return MakeStatus(ErrorCode::kTransportError,
                        "getsockname failed: " + why);
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

Result<int> ConnectUnix(const std::string& path) {
  sockaddr_un address;
  Status addressed = FillUnixAddress(path, &address);
  if (!addressed.ok()) return addressed;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return MakeStatus(ErrorCode::kTransportError,
                      "socket() failed: " + std::string(strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
      0) {
    const std::string why = strerror(errno);
    ::close(fd);
    return MakeStatus(ErrorCode::kTransportError,
                      "connect(" + path + ") failed: " + why);
  }
  return fd;
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  sockaddr_in address;
  Status addressed = FillTcpAddress(host, port, &address);
  if (!addressed.ok()) return addressed;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return MakeStatus(ErrorCode::kTransportError,
                      "socket() failed: " + std::string(strerror(errno)));
  }
  // The shard RPC path is many small latency-critical frames; Nagle
  // would serialize the MW phase round trips.
  const int enable = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&address), sizeof(address)) !=
      0) {
    const std::string why = strerror(errno);
    ::close(fd);
    return MakeStatus(
        ErrorCode::kTransportError,
        "connect(" + host + ":" + std::to_string(port) + ") failed: " + why);
  }
  return fd;
}

// ---------------------------------------------------------------------------
// FrameServer
// ---------------------------------------------------------------------------

FrameServer::FrameServer(FrameSink* sink) : sink_(sink) {
  PMW_CHECK(sink != nullptr);
}

FrameServer::~FrameServer() { Shutdown(); }

void FrameServer::Serve(int listen_fd) {
  PMW_CHECK_GE(listen_fd, 0);
  PMW_CHECK_MSG(listen_fd_ < 0 && !acceptor_.joinable(),
                "FrameServer::Serve called twice");
  listen_fd_ = listen_fd;
  acceptor_ = std::thread([this] { AcceptLoop(); });
}

void FrameServer::ReapFinished() {
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->active.load(std::memory_order_acquire) == 0) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      if ((*it)->writer.joinable()) (*it)->writer.join();
      ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void FrameServer::AcceptLoop() {
  for (;;) {
    // Poll with a timeout instead of blocking in accept(): departed
    // connections get reaped within ~500ms even when no new client ever
    // connects, not only on the next accept.
    pollfd listener{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&listener, 1, /*timeout_ms=*/500);
    ReapFinished();
    if (shutdown_.load(std::memory_order_acquire)) return;
    if (ready < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (ready == 0) continue;  // timeout: reap-only pass
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (shutdown) or fatal: stop accepting
    }
    if (shutdown_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    raw->fd = fd;
    raw->reader = std::thread([this, raw] { ReadLoop(raw); });
    raw->writer = std::thread([this, raw] { WriteLoop(raw); });
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(std::move(connection));
  }
}

void FrameServer::ReadLoop(Connection* connection) {
  std::string buffer;
  bool drop = false;
  while (!drop) {
    const ssize_t n = ReadSome(connection->fd, &buffer);
    if (n <= 0) break;  // EOF or error: peer hung up
    sink_->OnBytesIn(n);
    FrameStatus framing;
    const size_t consumed =
        WalkFrames(buffer, &framing, [&](std::string_view frame) {
          std::vector<std::future<AnswerEnvelope>> replies;
          sink_->OnFrame(frame, &connection->state, &replies);
          {
            std::lock_guard<std::mutex> lock(connection->mutex);
            for (std::future<AnswerEnvelope>& reply : replies) {
              connection->pending.push_back(std::move(reply));
            }
          }
          connection->cv.notify_one();
        });
    buffer.erase(0, consumed);
    if (framing == FrameStatus::kMalformed) {
      // The length prefix itself is garbage: no way to resynchronize.
      sink_->OnDecodeError();
      drop = true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(connection->mutex);
    connection->reader_done = true;
  }
  connection->cv.notify_one();
  connection->active.fetch_sub(1, std::memory_order_acq_rel);
}

void FrameServer::WriteLoop(Connection* connection) {
  std::string wire;
  for (;;) {
    std::future<AnswerEnvelope> next;
    {
      std::unique_lock<std::mutex> lock(connection->mutex);
      connection->cv.wait(lock, [connection] {
        return !connection->pending.empty() || connection->reader_done;
      });
      if (connection->pending.empty()) break;  // reader done and drained
      next = std::move(connection->pending.front());
      connection->pending.pop_front();
    }
    AnswerEnvelope envelope = next.get();
    wire.clear();
    EncodeAnswer(envelope, &wire);
    if (wire.size() > kMaxFramePayload + 4) {
      // The peer's ExtractFrame would reject this frame and drop the
      // whole connection; fail only the one reply instead.
      AnswerEnvelope oversized;
      oversized.request_id = envelope.request_id;
      oversized.error = ErrorCode::kInternal;
      oversized.message = "endpoint: answer exceeds the frame size limit";
      oversized.meta = envelope.meta;
      wire.clear();
      EncodeAnswer(oversized, &wire);
    }
    if (!WriteAll(connection->fd, wire.data(), wire.size())) break;
    sink_->OnReplyEncoded(static_cast<long long>(wire.size()));
  }
  // Wakes a reader still blocked in read(); the reader is always the
  // other live thread, so `active` cannot reach 0 before it exits too.
  ::shutdown(connection->fd, SHUT_RDWR);
  connection->active.fetch_sub(1, std::memory_order_acq_rel);
}

void FrameServer::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  if (listen_fd_ >= 0) {
    // Wake accept() and join the acceptor before closing, so the fd
    // number cannot be reused under it.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::lock_guard<std::mutex> lock(connections_mutex_);
  for (auto& connection : connections_) {
    // Stop the reader (no new requests); the writer drains what's
    // pending — those replies resolve as long as the sink's backing
    // endpoint is still up, which is why servers shut down before
    // endpoints.
    ::shutdown(connection->fd, SHUT_RD);
    if (connection->reader.joinable()) connection->reader.join();
    if (connection->writer.joinable()) connection->writer.join();
    ::close(connection->fd);
  }
  connections_.clear();
}

}  // namespace api
}  // namespace pmw
