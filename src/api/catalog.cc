#include "api/catalog.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/random.h"

namespace pmw {
namespace api {

bool QueryCatalog::Register(const std::string& name,
                            const convex::CmQuery& query) {
  PMW_CHECK(query.loss != nullptr);
  PMW_CHECK(query.domain != nullptr);
  auto [it, inserted] = by_name_.emplace(name, query);
  if (!inserted) return false;
  names_.push_back(name);
  scale_ = std::max(scale_, convex::ScaleBound(query));
  return true;
}

std::vector<std::string> QueryCatalog::Populate(const WorkloadSpec& spec,
                                                int count, uint64_t seed,
                                                const std::string& prefix) {
  PMW_CHECK_GE(count, 0);
  std::unique_ptr<losses::QueryFamily> family;
  switch (spec.family) {
    case WorkloadSpec::Family::kLipschitz:
      family = std::make_unique<losses::LipschitzFamily>(spec.dim);
      break;
    case WorkloadSpec::Family::kGlm:
      family = std::make_unique<losses::GlmFamily>(spec.dim);
      break;
    case WorkloadSpec::Family::kStronglyConvex:
      family = std::make_unique<losses::StronglyConvexFamily>(spec.dim,
                                                              spec.sigma);
      break;
    case WorkloadSpec::Family::kLinearQueries:
      family = std::make_unique<losses::LinearQueryFamily>(
          spec.dim, spec.max_width, spec.include_label);
      break;
  }
  scale_ = std::max(scale_, family->scale());
  Rng rng(seed);
  std::vector<std::string> registered;
  registered.reserve(static_cast<size_t>(count));
  for (int j = 0; j < count; ++j) {
    const convex::CmQuery query = family->Next(&rng);
    const std::string name = prefix + std::to_string(j);
    PMW_CHECK_MSG(Register(name, query),
                  "catalog name collision: " << name);
    registered.push_back(name);
  }
  families_.push_back(std::move(family));
  return registered;
}

const convex::CmQuery* QueryCatalog::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it != by_name_.end() ? &it->second : nullptr;
}

}  // namespace api
}  // namespace pmw
