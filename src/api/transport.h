// The client-side channel abstraction of the pmw::api protocol.
//
// A Transport moves one QueryRequest to a ServerEndpoint and one
// AnswerEnvelope back; api::Client supplies identity and correlation ids
// on top. Three implementations ship:
//
//   * InProcessTransport (api/in_process_transport.h) — zero-copy
//     loopback straight into a ServerEndpoint in this process; an
//     optional verify-codec mode round-trips every message through the
//     binary codec to keep the wire path honest in tests.
//   * SocketTransport (api/socket_transport.h) — frames over a Unix
//     domain socket to a SocketServer, with client-side request
//     correlation so many calls may be in flight on one connection.
//   * TcpTransport (api/socket_transport.h) — the same framing and
//     correlation machinery (one shared StreamTransport trunk) over a
//     TCP connection to a TcpServer or a cluster::ShardWorker; the
//     multi-host path, which is why hello/auth frames exist.

#ifndef PMWCM_API_TRANSPORT_H_
#define PMWCM_API_TRANSPORT_H_

#include <future>
#include <utility>
#include <vector>

#include "api/envelope.h"

namespace pmw {
namespace api {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Ships `request` and resolves with the reply envelope. Never throws
  /// for protocol or channel failures — those come back as envelopes
  /// carrying taxonomy errors (kTransportError when the channel itself
  /// broke). Thread-safe; any number of calls may be in flight.
  virtual std::future<AnswerEnvelope> Send(QueryRequest request) = 0;

  /// Ships one batched request (request.query_names non-empty) and
  /// resolves with one envelope per name, positionally. The base
  /// implementation degrades to one Send per name at consecutive
  /// request ids — correct everywhere, no frame coalescing; transports
  /// override to put the whole batch in one frame (SocketTransport:
  /// one write syscall per batch).
  virtual std::vector<std::future<AnswerEnvelope>> SendBatch(
      QueryRequest request) {
    std::vector<std::future<AnswerEnvelope>> replies;
    replies.reserve(request.query_names.size());
    for (size_t i = 0; i < request.query_names.size(); ++i) {
      QueryRequest single;
      single.version = request.version;
      single.analyst_id = request.analyst_id;
      single.request_id = request.request_id + i;
      single.deadline_micros = request.deadline_micros;
      single.query_name = request.query_names[i];
      replies.push_back(Send(std::move(single)));
    }
    return replies;
  }

  /// Ships a typed stats/budget poll; resolves with an envelope whose
  /// message is the server's report and whose meta carries the live
  /// remaining-budget view. The base implementation reports the poll as
  /// unsupported (a typed kTransportError envelope, never a throw).
  virtual std::future<AnswerEnvelope> SendStats(StatsRequest request) {
    AnswerEnvelope envelope;
    envelope.request_id = request.request_id;
    envelope.error = ErrorCode::kTransportError;
    envelope.message = "transport: stats polls are not supported";
    std::promise<AnswerEnvelope> promise;
    promise.set_value(std::move(envelope));
    return promise.get_future();
  }

  /// Ships a metrics scrape; resolves with an envelope whose message is
  /// the server registry's exposition (text or JSON per the request's
  /// format). Base implementation: typed kTransportError envelope.
  virtual std::future<AnswerEnvelope> SendMetrics(MetricsRequest request) {
    AnswerEnvelope envelope;
    envelope.request_id = request.request_id;
    envelope.error = ErrorCode::kTransportError;
    envelope.message = "transport: metrics scrapes are not supported";
    std::promise<AnswerEnvelope> promise;
    promise.set_value(std::move(envelope));
    return promise.get_future();
  }

  /// Ships a trace poll; resolves with an envelope whose message renders
  /// the server's slowest recorded span trees. Base implementation:
  /// typed kTransportError envelope.
  virtual std::future<AnswerEnvelope> SendTrace(TraceRequest request) {
    AnswerEnvelope envelope;
    envelope.request_id = request.request_id;
    envelope.error = ErrorCode::kTransportError;
    envelope.message = "transport: trace polls are not supported";
    std::promise<AnswerEnvelope> promise;
    promise.set_value(std::move(envelope));
    return promise.get_future();
  }

  /// Ships the hello/auth frame that binds an analyst id to this
  /// connection (socket transports; see envelope.h). Base
  /// implementation: a trusted loopback has no connection to bind, so
  /// hello succeeds as a no-op — what InProcessTransport inherits.
  virtual std::future<AnswerEnvelope> SendHello(HelloRequest request) {
    AnswerEnvelope envelope;
    envelope.request_id = request.request_id;
    std::promise<AnswerEnvelope> promise;
    promise.set_value(std::move(envelope));
    return promise.get_future();
  }

  /// Ships one internal shard RPC (cluster combiner -> worker; the reply
  /// payload rides the envelope's answer doubles). Base implementation:
  /// typed kTransportError envelope — only stream transports speak the
  /// worker protocol.
  virtual std::future<AnswerEnvelope> SendShardRpc(ShardRpcRequest request) {
    AnswerEnvelope envelope;
    envelope.request_id = request.request_id;
    envelope.error = ErrorCode::kTransportError;
    envelope.message = "transport: shard rpcs are not supported";
    std::promise<AnswerEnvelope> promise;
    promise.set_value(std::move(envelope));
    return promise.get_future();
  }

  /// Closes the channel; in-flight calls resolve with kTransportError.
  /// Idempotent.
  virtual void Close() {}
};

}  // namespace api
}  // namespace pmw

#endif  // PMWCM_API_TRANSPORT_H_
