// The client-side channel abstraction of the pmw::api protocol.
//
// A Transport moves one QueryRequest to a ServerEndpoint and one
// AnswerEnvelope back; api::Client supplies identity and correlation ids
// on top. Two implementations ship:
//
//   * InProcessTransport (api/in_process_transport.h) — zero-copy
//     loopback straight into a ServerEndpoint in this process; an
//     optional verify-codec mode round-trips every message through the
//     binary codec to keep the wire path honest in tests.
//   * SocketTransport (api/socket_transport.h) — frames over a Unix
//     domain socket to a SocketServer, with client-side request
//     correlation so many calls may be in flight on one connection.

#ifndef PMWCM_API_TRANSPORT_H_
#define PMWCM_API_TRANSPORT_H_

#include <future>

#include "api/envelope.h"

namespace pmw {
namespace api {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Ships `request` and resolves with the reply envelope. Never throws
  /// for protocol or channel failures — those come back as envelopes
  /// carrying taxonomy errors (kTransportError when the channel itself
  /// broke). Thread-safe; any number of calls may be in flight.
  virtual std::future<AnswerEnvelope> Send(QueryRequest request) = 0;

  /// Closes the channel; in-flight calls resolve with kTransportError.
  /// Idempotent.
  virtual void Close() {}
};

}  // namespace api
}  // namespace pmw

#endif  // PMWCM_API_TRANSPORT_H_
