// The server-side query catalog: the names the wire protocol serves.
//
// A convex::CmQuery is a non-owning (loss, domain) view — it cannot
// travel by value over a socket. The catalog is the protocol's answer:
// the server registers named queries (owning the generated losses via
// their families), requests reference entries by name, and the endpoint
// resolves names back to CmQuery views before forwarding into the
// dispatcher. Because resolution is pointer-stable, repeated requests for
// one name hit every layer of plan caching (batch dedup, cross-batch
// PlanCache) exactly like pointer-identical queries always have.
//
// Populate() wraps the Table 1 loss families (src/losses) so client code
// can build realistic workloads through the api surface alone.

#ifndef PMWCM_API_CATALOG_H_
#define PMWCM_API_CATALOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "convex/cm_query.h"
#include "losses/loss_family.h"

namespace pmw {
namespace api {

/// A loss-family workload to populate a catalog from (the paper's
/// Table 1 rows).
struct WorkloadSpec {
  enum class Family {
    kLipschitz,       // row 2: Lipschitz losses over the unit ball
    kGlm,             // row 3: unconstrained generalized linear models
    kStronglyConvex,  // row 4: sigma-strongly convex losses
    kLinearQueries,   // row 1: counting queries embedded as CM queries
  };
  Family family = Family::kLipschitz;
  int dim = 4;
  /// kStronglyConvex only.
  double sigma = 1.0;
  /// kLinearQueries only.
  int max_width = 3;
  bool include_label = true;
};

/// Named CM queries a ServerEndpoint is willing to answer. Build it
/// before the endpoint, then treat it as immutable while serving (name
/// resolution happens on submitter threads without locking).
class QueryCatalog {
 public:
  QueryCatalog() = default;
  QueryCatalog(const QueryCatalog&) = delete;
  QueryCatalog& operator=(const QueryCatalog&) = delete;

  /// Registers an externally owned query under `name` (the loss/domain
  /// must outlive the catalog). Returns false when the name is taken.
  bool Register(const std::string& name, const convex::CmQuery& query);

  /// Generates `count` queries from the family spec — the catalog owns
  /// the family and every generated loss — registering them as
  /// "<prefix><i>". Returns the registered names in generation order.
  /// Deterministic in `seed`.
  std::vector<std::string> Populate(const WorkloadSpec& spec, int count,
                                    uint64_t seed, const std::string& prefix);

  /// Name lookup; null on a miss. The returned view is pointer-stable
  /// for the catalog's lifetime.
  const convex::CmQuery* Find(const std::string& name) const;

  /// The family-wide scale bound S across everything registered (what
  /// PmwOptions::scale must cover).
  double scale() const { return scale_; }

  size_t size() const { return by_name_.size(); }
  /// Registered names in registration order.
  const std::vector<std::string>& names() const { return names_; }

 private:
  std::unordered_map<std::string, convex::CmQuery> by_name_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<losses::QueryFamily>> families_;
  double scale_ = 0.0;
};

}  // namespace api
}  // namespace pmw

#endif  // PMWCM_API_CATALOG_H_
