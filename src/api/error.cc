#include "api/error.h"

#include <utility>

namespace pmw {
namespace api {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "kOk";
    case ErrorCode::kQuotaExceeded:
      return "kQuotaExceeded";
    case ErrorCode::kBudgetExhausted:
      return "kBudgetExhausted";
    case ErrorCode::kHalted:
      return "kHalted";
    case ErrorCode::kDeadlineExpired:
      return "kDeadlineExpired";
    case ErrorCode::kMalformedRequest:
      return "kMalformedRequest";
    case ErrorCode::kVersionMismatch:
      return "kVersionMismatch";
    case ErrorCode::kUnknownQuery:
      return "kUnknownQuery";
    case ErrorCode::kShutdown:
      return "kShutdown";
    case ErrorCode::kNotConverged:
      return "kNotConverged";
    case ErrorCode::kTransportError:
      return "kTransportError";
    case ErrorCode::kInternal:
      return "kInternal";
    case ErrorCode::kShardUnavailable:
      return "kShardUnavailable";
    case ErrorCode::kAuthRequired:
      return "kAuthRequired";
  }
  return "kInternal";
}

StatusCode LegacyCode(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return StatusCode::kOk;
    case ErrorCode::kQuotaExceeded:
    case ErrorCode::kBudgetExhausted:
      return StatusCode::kResourceExhausted;
    case ErrorCode::kHalted:
      return StatusCode::kHalted;
    case ErrorCode::kDeadlineExpired:
      return StatusCode::kDeadlineExceeded;
    case ErrorCode::kMalformedRequest:
    case ErrorCode::kUnknownQuery:
      return StatusCode::kInvalidArgument;
    case ErrorCode::kVersionMismatch:
    case ErrorCode::kShutdown:
      return StatusCode::kFailedPrecondition;
    case ErrorCode::kNotConverged:
      return StatusCode::kNotConverged;
    case ErrorCode::kTransportError:
    case ErrorCode::kInternal:
    case ErrorCode::kShardUnavailable:
      return StatusCode::kInternal;
    case ErrorCode::kAuthRequired:
      return StatusCode::kFailedPrecondition;
  }
  return StatusCode::kInternal;
}

Status MakeStatus(ErrorCode code, const std::string& detail) {
  if (code == ErrorCode::kOk) return Status::Ok();
  return Status(LegacyCode(code),
                "[" + std::string(ErrorCodeName(code)) + "] " + detail);
}

namespace {

/// Parses the canonical "[kCodeName] " tag, if present.
bool ParseTag(const std::string& message, ErrorCode* code) {
  if (message.empty() || message.front() != '[') return false;
  const size_t close = message.find("] ");
  if (close == std::string::npos) return false;
  const std::string name = message.substr(1, close - 1);
  for (uint16_t raw = 0; raw <= static_cast<uint16_t>(kMaxErrorCode);
       ++raw) {
    const ErrorCode candidate = static_cast<ErrorCode>(raw);
    if (name == ErrorCodeName(candidate)) {
      *code = candidate;
      return true;
    }
  }
  return false;
}

}  // namespace

ErrorCode ClassifyStatus(const Status& status) {
  if (status.ok()) return ErrorCode::kOk;
  ErrorCode tagged;
  if (ParseTag(status.message(), &tagged)) return tagged;
  // Untagged legacy statuses: a total classification of what the lower
  // layers emit today.
  switch (status.code()) {
    case StatusCode::kOk:
      return ErrorCode::kOk;
    case StatusCode::kHalted:
      // core::PmwCm / dp::SparseVector: "sparse vector exhausted its T
      // updates".
      return ErrorCode::kHalted;
    case StatusCode::kResourceExhausted:
      // Pre-taxonomy QuotaManager used a "quota:" message prefix to
      // distinguish front-door rejections from the mechanism's own
      // "k queries already answered".
      return status.message().find("quota") != std::string::npos
                 ? ErrorCode::kQuotaExceeded
                 : ErrorCode::kBudgetExhausted;
    case StatusCode::kDeadlineExceeded:
      return ErrorCode::kDeadlineExpired;
    case StatusCode::kInvalidArgument:
      // Oracles/solvers reject ill-formed queries (wrong loss family,
      // delta <= 0): the request was malformed as far as the protocol is
      // concerned.
      return ErrorCode::kMalformedRequest;
    case StatusCode::kFailedPrecondition:
      // frontend::Dispatcher: "dispatcher is shut down".
      return status.message().find("shut down") != std::string::npos
                 ? ErrorCode::kShutdown
                 : ErrorCode::kInternal;
    case StatusCode::kNotConverged:
      return ErrorCode::kNotConverged;
    case StatusCode::kInternal:
      return ErrorCode::kInternal;
  }
  return ErrorCode::kInternal;
}

Status ToStatus(ErrorCode code, std::string message) {
  if (code == ErrorCode::kOk) return Status::Ok();
  return Status(LegacyCode(code), std::move(message));
}

}  // namespace api
}  // namespace pmw
