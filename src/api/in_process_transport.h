// Zero-copy loopback transport: Client and ServerEndpoint in one process.
//
// The fast path hands the QueryRequest struct straight to the endpoint —
// no serialization, no copy of the answer vector on the way back (the
// future is the endpoint's own). This is the deployment an embedded
// analyst library uses, and the baseline the bench gate measures protocol
// overhead against (bench_frontend: api layer within 10% of direct
// Dispatcher::Submit).
//
// verify_codec mode additionally round-trips every request and reply
// through the binary codec (encode -> decode -> serve -> encode ->
// decode), so tests exercise the exact byte path the socket transport
// uses without a socket; codec traffic lands in the endpoint's
// CodecCounters either way a frame is actually produced.

#ifndef PMWCM_API_IN_PROCESS_TRANSPORT_H_
#define PMWCM_API_IN_PROCESS_TRANSPORT_H_

#include <future>
#include <vector>

#include "api/endpoint.h"
#include "api/transport.h"

namespace pmw {
namespace api {

class InProcessTransport : public Transport {
 public:
  /// `endpoint` must outlive the transport.
  explicit InProcessTransport(ServerEndpoint* endpoint,
                              bool verify_codec = false);

  std::future<AnswerEnvelope> Send(QueryRequest request) override;

  /// Batched loopback: the whole batch is handed (or, in verify-codec
  /// mode, encoded as the ONE batched frame then decoded) to
  /// ServerEndpoint::HandleBatch — the same single-frame shape the
  /// socket transport puts on the wire.
  std::vector<std::future<AnswerEnvelope>> SendBatch(
      QueryRequest request) override;

  std::future<AnswerEnvelope> SendStats(StatsRequest request) override;
  std::future<AnswerEnvelope> SendMetrics(MetricsRequest request) override;
  std::future<AnswerEnvelope> SendTrace(TraceRequest request) override;

 private:
  /// Wraps a served reply future so collecting it round-trips the
  /// envelope through the binary codec (verify-codec mode).
  std::future<AnswerEnvelope> VerifyReply(
      std::future<AnswerEnvelope> served);

  ServerEndpoint* endpoint_;
  const bool verify_codec_;
};

}  // namespace api
}  // namespace pmw

#endif  // PMWCM_API_IN_PROCESS_TRANSPORT_H_
