// The wire deployments of the pmw::api protocol: codec frames over a
// stream socket — Unix-domain for the same-host sidecar story, TCP for
// the multi-host cluster (front door + shard-group workers).
//
//   StreamTransport (client)                FrameServer (server core)
//   Send: encode frame, register            accept loop -> per-connection
//   promise by request id, write            reader (frame walk -> sink
//   under the write lock; a reader          dispatch, enqueue reply
//   thread decodes reply frames and         future) + writer (wait FIFO,
//   resolves the matching promise           encode, write back)
//
// Unix-domain and TCP are the SAME protocol over the same framing path
// (api/frame_server.h): SocketServer/SocketTransport and
// TcpServer/TcpTransport differ only in how the listener/connection fd
// is made, so adversarial-bytes behavior — typed error envelopes for
// decodable-but-invalid frames, connection drop only on unrecoverable
// framing — cannot diverge between the two families.
//
// Many requests may be in flight on one connection in both directions:
// the client correlates replies by the request id the envelope echoes,
// and the server's writer waits on reply futures in arrival (FIFO)
// order — which costs nothing, because the dispatcher resolves them in
// exactly that order. The client surfaces channel failures as typed
// kTransportError envelopes, never raw errno text without the taxonomy
// tag.
//
// TCP widens the threat model from "same host" to "whoever can reach
// the port"; ServerOptions::auth_token + the hello frame exist for
// exactly that step (see endpoint.h for the binding rules).

#ifndef PMWCM_API_SOCKET_TRANSPORT_H_
#define PMWCM_API_SOCKET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/endpoint.h"
#include "api/frame_server.h"
#include "api/transport.h"
#include "common/result.h"

namespace pmw {
namespace api {

/// Serves one ServerEndpoint on a Unix-domain socket path. Start() spawns
/// the accept loop; every accepted connection gets a reader thread
/// (decode -> Handle) and a writer thread (encode replies as their
/// futures resolve). Shut the server down BEFORE the endpoint so pending
/// replies can still be served and written back.
class SocketServer {
 public:
  /// `endpoint` must outlive the server.
  SocketServer(ServerEndpoint* endpoint, std::string socket_path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and starts accepting. Typed error on failure (path
  /// too long, bind refused).
  Status Start();

  /// Stops accepting, closes every connection after its pending replies
  /// are written, joins all threads, unlinks the socket path. Idempotent.
  void Shutdown();

  const std::string& path() const { return path_; }

 private:
  const std::string path_;
  /// True once Start() has bound the path (what Shutdown may unlink).
  bool bound_ = false;
  std::unique_ptr<FrameSink> sink_;
  FrameServer server_;
};

/// Serves one ServerEndpoint on a TCP listener — the multi-host front
/// door. Same dispatch, framing, and adversarial-bytes behavior as
/// SocketServer (one shared FrameServer underneath); only the listener
/// family differs.
class TcpServer {
 public:
  /// `endpoint` must outlive the server. `host` is an IPv4 dotted-quad
  /// (127.0.0.1 for same-host clusters, 0.0.0.0 to serve a real one);
  /// port 0 picks an ephemeral port — read it back via port().
  TcpServer(ServerEndpoint* endpoint, std::string host, uint16_t port);
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts accepting. Typed error on failure.
  Status Start();

  /// Stops accepting, drains and closes every connection. Idempotent.
  void Shutdown();

  const std::string& host() const { return host_; }
  /// The actual bound port (resolves port 0); valid after Start().
  uint16_t port() const { return bound_port_; }

 private:
  const std::string host_;
  const uint16_t requested_port_;
  uint16_t bound_port_ = 0;
  std::unique_ptr<FrameSink> sink_;
  FrameServer server_;
};

/// Client-side transport over one connected stream socket: the shared
/// trunk of SocketTransport (Unix-domain) and TcpTransport. Owns the
/// reader thread, the request-id correlation map, and the
/// typed-kTransportError failure paths.
class StreamTransport : public Transport {
 public:
  ~StreamTransport() override;

  /// Ok once connected; the typed connect error otherwise (every later
  /// Send on a failed channel resolves with it as a kTransportError
  /// envelope).
  Status status() const { return connect_status_; }

  std::future<AnswerEnvelope> Send(QueryRequest request) override;

  /// One batched frame, one write syscall, N pipelined replies (the
  /// server answers each name with its own envelope at consecutive
  /// request ids — the existing correlation path resolves them).
  std::vector<std::future<AnswerEnvelope>> SendBatch(
      QueryRequest request) override;

  /// Stats/metrics/trace polls ride the same connection; each reply is a
  /// normal answer frame correlated by request id.
  std::future<AnswerEnvelope> SendStats(StatsRequest request) override;
  std::future<AnswerEnvelope> SendMetrics(MetricsRequest request) override;
  std::future<AnswerEnvelope> SendTrace(TraceRequest request) override;

  /// The hello/auth frame binding an analyst id to THIS connection.
  std::future<AnswerEnvelope> SendHello(HelloRequest request) override;

  /// Internal shard RPC (combiner -> worker); the reply is an ordinary
  /// answer frame, so it shares the correlation machinery.
  std::future<AnswerEnvelope> SendShardRpc(ShardRpcRequest request) override;

  void Close() override;

 protected:
  StreamTransport() = default;
  /// Adopts the connected fd (spawning the reader thread) or records the
  /// typed connect error. Derived constructors call exactly once.
  void Adopt(Result<int> connected);

 private:
  void ReadLoop();
  /// Registers promises for ids [first_id, first_id + count), and writes
  /// `wire` (already framed) once; on any failure every registered
  /// promise resolves with a typed kTransportError envelope. The shared
  /// trunk of every Send flavor.
  std::vector<std::future<AnswerEnvelope>> ShipFrame(
      const std::string& wire, uint64_t first_id, size_t count);
  /// Fails every registered promise with kTransportError.
  void FailAllPending(const std::string& why);
  AnswerEnvelope TransportError(uint64_t request_id,
                                const std::string& why) const;

  Status connect_status_;
  int fd_ = -1;
  std::atomic<bool> closed_{false};
  /// Set by ReadLoop when the connection dies (EOF, error, malformed
  /// stream): no reply can ever arrive, so Send must stop registering
  /// promises that nothing would resolve.
  std::atomic<bool> broken_{false};
  std::mutex close_mutex_;  // serializes Close callers
  std::mutex write_mutex_;
  std::mutex pending_mutex_;
  std::unordered_map<uint64_t, std::promise<AnswerEnvelope>> pending_;
  std::thread reader_;  // last: started once fd_ is live
};

/// Client-side transport over one Unix-domain connection.
class SocketTransport : public StreamTransport {
 public:
  /// Connects immediately; check status() before first use.
  explicit SocketTransport(const std::string& socket_path);
};

/// Client-side transport over one TCP connection (IPv4 dotted-quad
/// host). What the cluster combiner and remote analysts use.
class TcpTransport : public StreamTransport {
 public:
  /// Connects immediately; check status() before first use.
  TcpTransport(const std::string& host, uint16_t port);
};

}  // namespace api
}  // namespace pmw

#endif  // PMWCM_API_SOCKET_TRANSPORT_H_
