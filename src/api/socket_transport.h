// The wire deployment of the pmw::api protocol: codec frames over a Unix
// domain socket.
//
//   SocketTransport (client)                SocketServer (server)
//   Send: encode frame, register            accept loop -> per-connection
//   promise by request id, write            reader (decode -> endpoint
//   under the write lock; a reader          Handle, enqueue reply future)
//   thread decodes reply frames and         + writer (wait FIFO, encode,
//   resolves the matching promise           write back)
//
// Many requests may be in flight on one connection in both directions:
// the client correlates replies by the request id the envelope echoes,
// and the server's writer waits on reply futures in arrival (FIFO)
// order — which costs nothing, because the dispatcher resolves them in
// exactly that order. Malformed frames never crash either side: the
// server answers a decodable-but-invalid request with a typed error
// envelope and drops the connection only on unrecoverable framing
// (length prefix out of bounds); the client surfaces channel failures as
// kTransportError envelopes.
//
// Deliberately Unix-domain only: the serving story is a local sidecar /
// same-host daemon. A TCP listener would add nothing to the protocol and
// a lot to the threat model.

#ifndef PMWCM_API_SOCKET_TRANSPORT_H_
#define PMWCM_API_SOCKET_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/endpoint.h"
#include "api/transport.h"
#include "common/result.h"

namespace pmw {
namespace api {

/// Serves one ServerEndpoint on a Unix-domain socket path. Start() spawns
/// the accept loop; every accepted connection gets a reader thread
/// (decode -> Handle) and a writer thread (encode replies as their
/// futures resolve). Shut the server down BEFORE the endpoint so pending
/// replies can still be served and written back.
class SocketServer {
 public:
  /// `endpoint` must outlive the server.
  SocketServer(ServerEndpoint* endpoint, std::string socket_path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and starts accepting. Typed error on failure (path
  /// too long, bind refused).
  Status Start();

  /// Stops accepting, closes every connection after its pending replies
  /// are written, joins all threads, unlinks the socket path. Idempotent.
  void Shutdown();

  const std::string& path() const { return path_; }

 private:
  struct Connection {
    int fd = -1;
    std::thread reader;
    std::thread writer;
    std::mutex mutex;
    std::condition_variable cv;
    /// Reply futures in request-arrival order (the order the dispatcher
    /// resolves them).
    std::deque<std::future<AnswerEnvelope>> pending;
    bool reader_done = false;
    /// Live threads (reader + writer); 0 means the connection is over
    /// and the acceptor may reap it.
    std::atomic<int> active{2};
  };

  void AcceptLoop();
  void ReadLoop(Connection* connection);
  void WriteLoop(Connection* connection);
  /// Joins, closes, and erases connections whose threads have exited —
  /// a long-lived daemon must not accumulate one fd + two threads per
  /// departed client until Shutdown.
  void ReapFinished();

  ServerEndpoint* endpoint_;
  const std::string path_;
  int listen_fd_ = -1;
  /// True once Start() has bound the path (what Shutdown may unlink).
  bool bound_ = false;
  std::atomic<bool> shutdown_{false};
  std::mutex shutdown_mutex_;  // serializes Shutdown callers
  std::thread acceptor_;
  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;
};

/// Client-side transport over one Unix-domain connection.
class SocketTransport : public Transport {
 public:
  /// Connects immediately; check status() before first use.
  explicit SocketTransport(const std::string& socket_path);
  ~SocketTransport() override;

  /// Ok once connected; the connect error otherwise.
  Status status() const { return connect_status_; }

  std::future<AnswerEnvelope> Send(QueryRequest request) override;

  /// One batched frame, one write syscall, N pipelined replies (the
  /// server answers each name with its own envelope at consecutive
  /// request ids — the existing correlation path resolves them).
  std::vector<std::future<AnswerEnvelope>> SendBatch(
      QueryRequest request) override;

  /// Stats/metrics/trace polls ride the same connection; each reply is a
  /// normal answer frame correlated by request id.
  std::future<AnswerEnvelope> SendStats(StatsRequest request) override;
  std::future<AnswerEnvelope> SendMetrics(MetricsRequest request) override;
  std::future<AnswerEnvelope> SendTrace(TraceRequest request) override;

  void Close() override;

 private:
  void ReadLoop();
  /// Registers promises for ids [first_id, first_id + count), encodes
  /// `wire` (already framed), and writes it once; on any failure every
  /// registered promise resolves with a typed kTransportError envelope.
  /// The shared trunk of Send/SendBatch/SendStats.
  std::vector<std::future<AnswerEnvelope>> ShipFrame(
      const std::string& wire, uint64_t first_id, size_t count);
  /// Fails every registered promise with kTransportError.
  void FailAllPending(const std::string& why);
  AnswerEnvelope TransportError(uint64_t request_id,
                                const std::string& why) const;

  Status connect_status_;
  int fd_ = -1;
  std::atomic<bool> closed_{false};
  /// Set by ReadLoop when the connection dies (EOF, error, malformed
  /// stream): no reply can ever arrive, so Send must stop registering
  /// promises that nothing would resolve.
  std::atomic<bool> broken_{false};
  std::mutex close_mutex_;  // serializes Close callers
  std::mutex write_mutex_;
  std::mutex pending_mutex_;
  std::unordered_map<uint64_t, std::promise<AnswerEnvelope>> pending_;
  std::thread reader_;  // last: started once fd_ is live
};

}  // namespace api
}  // namespace pmw

#endif  // PMWCM_API_SOCKET_TRANSPORT_H_
