#include "api/endpoint.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "common/table_printer.h"
#include "erm/glm_oracle.h"
#include "erm/noisy_gradient_oracle.h"
#include "erm/nonprivate_oracle.h"
#include "obs/slo.h"

namespace pmw {
namespace api {
namespace {

std::unique_ptr<erm::Oracle> MakeOracle(OracleKind kind) {
  switch (kind) {
    case OracleKind::kNoisyGradient:
      return std::make_unique<erm::NoisyGradientOracle>();
    case OracleKind::kGlm:
      return std::make_unique<erm::GlmOracle>();
    case OracleKind::kNonPrivate:
      return std::make_unique<erm::NonPrivateOracle>();
  }
  return std::make_unique<erm::NoisyGradientOracle>();
}

}  // namespace

void CodecCounters::BindTo(obs::Registry* registry) {
  frames_encoded = registry->GetCounter("pmw_api_frames_encoded_total");
  frames_decoded = registry->GetCounter("pmw_api_frames_decoded_total");
  decode_errors = registry->GetCounter("pmw_api_decode_errors_total");
  bytes_in = registry->GetCounter("pmw_api_bytes_in_total");
  bytes_out = registry->GetCounter("pmw_api_bytes_out_total");
}

ServerEndpoint::ServerEndpoint(const data::Dataset* dataset,
                               const QueryCatalog* catalog,
                               const ServerOptions& options, uint64_t seed)
    : ServerEndpoint(dataset, nullptr, catalog, options, seed) {}

ServerEndpoint::ServerEndpoint(const data::Dataset* dataset,
                               erm::Oracle* oracle,
                               const QueryCatalog* catalog,
                               const ServerOptions& options, uint64_t seed)
    : catalog_(catalog), options_(options) {
  PMW_CHECK(dataset != nullptr);
  PMW_CHECK(catalog != nullptr);
  codec_counters_.BindTo(&registry_);
  if (options.enable_tracing) {
    traces_ = std::make_unique<obs::TraceRecorder>(options.trace_capacity);
  }
  if (oracle == nullptr) {
    owned_oracle_ = MakeOracle(options.oracle);
    oracle = owned_oracle_.get();
  }
  // The serve/frontend layers record into the endpoint's registry so one
  // kMetricsRequest scrape covers the whole stack.
  serve::ServeOptions serve_options = options.serve;
  serve_options.registry = &registry_;
  service_ = std::make_unique<serve::PmwService>(
      dataset, oracle, options.mechanism, seed, serve_options);
  quota_ = std::make_unique<frontend::QuotaManager>(service_.get(),
                                                    options.quota);
  if (options.enable_plan_cache) {
    plan_cache_ = std::make_unique<frontend::PlanCache>();
  }
  frontend::DispatcherOptions dispatcher_options = options.dispatcher;
  dispatcher_options.record_arrival_log = options.record_arrival_log;
  dispatcher_options.trace_recorder = traces_.get();
  dispatcher_ = std::make_unique<frontend::Dispatcher>(
      service_.get(), quota_.get(), plan_cache_.get(), dispatcher_options);
}

ServerEndpoint::~ServerEndpoint() { Shutdown(); }

std::future<AnswerEnvelope> ServerEndpoint::Ready(AnswerEnvelope envelope) {
  std::promise<AnswerEnvelope> promise;
  std::future<AnswerEnvelope> future = promise.get_future();
  promise.set_value(std::move(envelope));
  return future;
}

std::future<AnswerEnvelope> ServerEndpoint::Handle(QueryRequest request) {
  if (request.version < kMinProtocolVersion ||
      request.version > kProtocolVersion) {
    AnswerEnvelope envelope;
    envelope.request_id = request.request_id;
    envelope.error = ErrorCode::kVersionMismatch;
    envelope.message =
        "endpoint: request speaks protocol version " +
        std::to_string(request.version) + "; this endpoint speaks [" +
        std::to_string(kMinProtocolVersion) + ", " +
        std::to_string(kProtocolVersion) + "]";
    return Ready(std::move(envelope));
  }
  const convex::CmQuery* query = catalog_->Find(request.query_name);
  if (query == nullptr) {
    AnswerEnvelope envelope;
    envelope.version = request.version;
    envelope.request_id = request.request_id;
    envelope.error = ErrorCode::kUnknownQuery;
    envelope.message = "endpoint: catalog has no query named '" +
                       request.query_name + "'";
    return Ready(std::move(envelope));
  }
  std::chrono::steady_clock::time_point deadline{};
  if (request.deadline_micros != 0) {
    // Clamp the wire value before chrono arithmetic: an adversarial u64
    // would overflow the clock's nanosecond representation (signed UB)
    // and wrap to a *past* deadline. Ten years is "effectively none".
    constexpr uint64_t kMaxDeadlineMicros =
        uint64_t{10} * 365 * 24 * 3600 * 1000000;
    deadline = std::chrono::steady_clock::now() +
               std::chrono::microseconds(
                   std::min(request.deadline_micros, kMaxDeadlineMicros));
  }
  uint64_t dispatch_id = 0;
  std::future<frontend::Served> served;
  if (options_.record_arrival_log) {
    // The mutex spans Submit + map insert so ArrivalLog() can never
    // observe a dispatch id (committed by the dispatcher thread) whose
    // record is not in the map yet.
    std::lock_guard<std::mutex> lock(arrivals_mutex_);
    served = dispatcher_->Submit(request.analyst_id, *query, &dispatch_id,
                                 deadline);
    arrivals_[dispatch_id] = ArrivalRecord{
        request.analyst_id, request.request_id, request.query_name};
  } else {
    served = dispatcher_->Submit(request.analyst_id, *query, &dispatch_id,
                                 deadline);
  }
  // A synchronously resolved submit (quota/shutdown rejection, or a
  // served answer that beat us here) is finished eagerly: the envelope
  // is complete, and — unlike a deferred task, which never runs if its
  // future is abandoned without get() — the never-committed arrivals_
  // cleanup inside Finish is guaranteed to happen.
  if (served.wait_for(std::chrono::seconds(0)) ==
      std::future_status::ready) {
    return Ready(
        Finish(request.version, request.request_id, dispatch_id,
               served.get()));
  }
  // Deferred adapter: the envelope is assembled on whichever thread
  // get()s the future (transport writer loops, Client::Call) — the
  // dispatcher thread never does envelope work.
  return std::async(
      std::launch::deferred,
      [this, version = request.version, request_id = request.request_id,
       dispatch_id, inner = std::move(served)]() mutable {
        return Finish(version, request_id, dispatch_id, inner.get());
      });
}

std::vector<std::future<AnswerEnvelope>> ServerEndpoint::HandleBatch(
    QueryRequest request) {
  std::vector<std::future<AnswerEnvelope>> replies;
  if (request.query_names.empty()) {
    replies.push_back(Handle(std::move(request)));
    return replies;
  }
  replies.reserve(request.query_names.size());
  for (size_t i = 0; i < request.query_names.size(); ++i) {
    QueryRequest single;
    single.version = request.version;
    single.analyst_id = request.analyst_id;
    single.request_id = request.request_id + i;
    single.deadline_micros = request.deadline_micros;
    single.query_name = request.query_names[i];
    replies.push_back(Handle(std::move(single)));
  }
  return replies;
}

AnswerEnvelope ServerEndpoint::HandleStats(const StatsRequest& request) {
  AnswerEnvelope envelope;
  envelope.request_id = request.request_id;
  if (request.version < kMinProtocolVersion ||
      request.version > kProtocolVersion) {
    envelope.error = ErrorCode::kVersionMismatch;
    envelope.message =
        "endpoint: stats request speaks protocol version " +
        std::to_string(request.version) + "; this endpoint speaks [" +
        std::to_string(kMinProtocolVersion) + ", " +
        std::to_string(kProtocolVersion) + "]";
    return envelope;
  }
  envelope.version = request.version;
  envelope.message = Report();
  // The live budget view, through the same locked reads Finish uses.
  envelope.meta.hard_rounds_remaining = quota_->HardRoundsRemaining();
  const dp::PrivacyParams spent =
      service_->mechanism().ledger().BasicTotal();
  envelope.meta.epsilon_spent = spent.epsilon;
  envelope.meta.delta_spent = spent.delta;
  envelope.meta.shards = static_cast<uint32_t>(service_->num_shards());
  // The epoch holder is the mutex-guarded view of the hypothesis
  // version (the live counter belongs to the serving writer).
  std::shared_ptr<const serve::Epoch> epoch = service_->epochs().Current();
  if (epoch != nullptr) {
    envelope.meta.epoch = static_cast<uint64_t>(epoch->snapshot->version);
  }
  return envelope;
}

AnswerEnvelope ServerEndpoint::HandleMetrics(const MetricsRequest& request) {
  AnswerEnvelope envelope;
  envelope.request_id = request.request_id;
  if (request.version < kMinProtocolVersion ||
      request.version > kProtocolVersion) {
    envelope.error = ErrorCode::kVersionMismatch;
    envelope.message =
        "endpoint: metrics request speaks protocol version " +
        std::to_string(request.version) + "; this endpoint speaks [" +
        std::to_string(kMinProtocolVersion) + ", " +
        std::to_string(kProtocolVersion) + "]";
    return envelope;
  }
  envelope.version = request.version;
  // Refresh the scrape-time SLO burn gauges from the live histograms
  // BEFORE rendering, so the exposition the scraper reads already
  // carries them. Scrape-thread-only work: the serving writer never
  // computes a quantile.
  obs::UpdateSloBurnGauges(
      &registry_,
      {{"queue_wait", "pmw_frontend_queue_wait_us", 0.99,
        options_.slo_queue_wait_p99_us, /*higher_is_better=*/false},
       {"serve", "pmw_frontend_serve_us", 0.99, options_.slo_serve_p99_us,
        /*higher_is_better=*/false},
       {"goodput", "pmw_serve_batch_queries_per_sec", 0.5,
        options_.slo_goodput_qps, /*higher_is_better=*/true}});
  switch (request.format) {
    case kMetricsFormatText:
      envelope.message = registry_.TextExposition();
      break;
    case kMetricsFormatJson:
      envelope.message = registry_.JsonDump();
      break;
    default:
      envelope.error = ErrorCode::kMalformedRequest;
      envelope.message = "endpoint: unknown metrics format " +
                         std::to_string(request.format);
      break;
  }
  return envelope;
}

AnswerEnvelope ServerEndpoint::HandleTrace(const TraceRequest& request) {
  AnswerEnvelope envelope;
  envelope.request_id = request.request_id;
  if (request.version < kMinProtocolVersion ||
      request.version > kProtocolVersion) {
    envelope.error = ErrorCode::kVersionMismatch;
    envelope.message =
        "endpoint: trace request speaks protocol version " +
        std::to_string(request.version) + "; this endpoint speaks [" +
        std::to_string(kMinProtocolVersion) + ", " +
        std::to_string(kProtocolVersion) + "]";
    return envelope;
  }
  envelope.version = request.version;
  if (traces_ == nullptr) {
    envelope.message = "(tracing disabled on this endpoint)\n";
    return envelope;
  }
  envelope.message = obs::TraceRecorder::Format(traces_->SlowRequests(
      request.min_total_us, std::min<size_t>(request.max_traces,
                                             traces_->capacity())));
  return envelope;
}

AnswerEnvelope ServerEndpoint::HandleHello(const HelloRequest& request) {
  AnswerEnvelope envelope;
  envelope.request_id = request.request_id;
  if (request.version < kMinProtocolVersion ||
      request.version > kProtocolVersion) {
    envelope.error = ErrorCode::kVersionMismatch;
    envelope.message =
        "endpoint: hello request speaks protocol version " +
        std::to_string(request.version) + "; this endpoint speaks [" +
        std::to_string(kMinProtocolVersion) + ", " +
        std::to_string(kProtocolVersion) + "]";
    return envelope;
  }
  envelope.version = request.version;
  if (options_.auth_token.empty()) return envelope;  // open endpoint
  if (request.analyst_id.empty()) {
    envelope.error = ErrorCode::kAuthRequired;
    envelope.message = "endpoint: hello must name the analyst to bind";
    return envelope;
  }
  if (request.auth_token != options_.auth_token) {
    // Deliberately no detail about WHICH check failed beyond this: the
    // reply is visible to whoever can reach the port.
    envelope.error = ErrorCode::kAuthRequired;
    envelope.message = "endpoint: hello auth token rejected";
    return envelope;
  }
  return envelope;
}

AnswerEnvelope ServerEndpoint::HandleSync(QueryRequest request) {
  return Handle(std::move(request)).get();
}

namespace {

/// Rejections resolved before a request could ever be committed: their
/// dispatch ids can never appear in the dispatcher's arrival log.
/// kHalted is ambiguous — the mechanism's own halt IS a committed
/// transcript entry, the QuotaManager's door prediction is not — and
/// the documented "quota:" detail prefix is what tells them apart.
bool NeverCommitted(ErrorCode error, const std::string& message) {
  switch (error) {
    case ErrorCode::kQuotaExceeded:
    case ErrorCode::kShutdown:
    case ErrorCode::kDeadlineExpired:
      return true;
    case ErrorCode::kHalted:
      return message.find("quota:") != std::string::npos;
    default:
      return false;
  }
}

}  // namespace

AnswerEnvelope ServerEndpoint::Finish(uint8_t version, uint64_t request_id,
                                      uint64_t dispatch_id,
                                      frontend::Served served) {
  AnswerEnvelope envelope;
  // Reply at the REQUEST's (validated, in-range) version: a newer
  // server answering an older client must emit frames the client can
  // decode.
  envelope.version = version;
  envelope.request_id = request_id;
  if (served.answer.ok()) {
    envelope.answer = std::move(*served.answer);
    envelope.meta.epoch = static_cast<uint64_t>(served.outcome.epoch);
    envelope.meta.hard_round = served.outcome.hard_round;
    envelope.meta.cache_hit = served.outcome.cache_hit;
    envelope.meta.prepare_us = served.outcome.prepare_us;
    envelope.meta.solve_us = served.outcome.solve_us;
    envelope.meta.mw_us = served.outcome.mw_us;
    envelope.meta.commit_us = served.outcome.commit_us;
  } else {
    envelope.error = ClassifyStatus(served.answer.status());
    envelope.message = served.answer.status().message();
    // A record whose request was never committed would sit in arrivals_
    // forever (quota-rejected floods would grow it without bound).
    // Synchronous rejections reach this erase eagerly in Handle; only a
    // deferred future abandoned without get() (departed client with an
    // in-queue expiry) can still skip it — rare and per-event bounded.
    if (options_.record_arrival_log &&
        NeverCommitted(envelope.error, envelope.message)) {
      std::lock_guard<std::mutex> lock(arrivals_mutex_);
      arrivals_.erase(dispatch_id);
    }
  }
  // The remaining-budget view: what the ledger says has been spent, and
  // how many hard rounds are left before the sparse vector halts. Both
  // reads go through the ledger's own lock, so any completion thread may
  // assemble envelopes while the writer keeps serving. The shard count
  // is fixed at construction, so reading it here is race-free too.
  envelope.meta.hard_rounds_remaining = quota_->HardRoundsRemaining();
  const dp::PrivacyParams spent =
      service_->mechanism().ledger().BasicTotal();
  envelope.meta.epsilon_spent = spent.epsilon;
  envelope.meta.delta_spent = spent.delta;
  envelope.meta.shards = static_cast<uint32_t>(service_->num_shards());
  // The server-side latency split the dispatcher measured; zero when the
  // request never reached the queue.
  envelope.meta.queue_wait_us = served.queue_wait_us;
  envelope.meta.serve_us = served.serve_us;
  return envelope;
}

void ServerEndpoint::Shutdown() { dispatcher_->Shutdown(); }

std::vector<ServerEndpoint::ArrivalRecord> ServerEndpoint::ArrivalLog()
    const {
  std::vector<ArrivalRecord> log;
  std::lock_guard<std::mutex> lock(arrivals_mutex_);
  for (uint64_t dispatch_id : dispatcher_->ArrivalLog()) {
    auto it = arrivals_.find(dispatch_id);
    PMW_CHECK_MSG(it != arrivals_.end(),
                  "arrival log references unknown dispatch id "
                      << dispatch_id);
    log.push_back(it->second);
  }
  return log;
}

std::string ServerEndpoint::Report() const {
  std::vector<std::string> header = frontend::DispatcherStats::TableHeader();
  std::vector<std::string> row = dispatcher_->stats().TableRow();
  for (const char* column : {"enc", "dec", "dec_err", "b_in", "b_out"}) {
    header.push_back(column);
  }
  row.push_back(
      TablePrinter::FmtInt(codec_counters_.frames_encoded->Value()));
  row.push_back(
      TablePrinter::FmtInt(codec_counters_.frames_decoded->Value()));
  row.push_back(
      TablePrinter::FmtInt(codec_counters_.decode_errors->Value()));
  row.push_back(TablePrinter::FmtInt(codec_counters_.bytes_in->Value()));
  row.push_back(TablePrinter::FmtInt(codec_counters_.bytes_out->Value()));
  TablePrinter table(std::move(header));
  table.AddRow(std::move(row));
  // The snapshot, not the live counters: Report() is also the payload of
  // the stats RPC, which runs while the writer keeps serving.
  return table.ToString() + service_->stats_snapshot().Report();
}

}  // namespace api
}  // namespace pmw
