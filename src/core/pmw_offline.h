// Offline private multiplicative weights for CM queries — the variant
// sketched in the paper's Section 1.2 ([GHRU11, GRU12, HLM12] style): the
// k loss functions are fixed in advance, each round privately selects the
// query on which the hypothesis errs most (exponential mechanism over the
// (3S/n)-sensitive error scores), calls A' on it, and performs the same
// dual-certificate MW update as the online algorithm. After T rounds every
// query is answered from the final hypothesis.

#ifndef PMWCM_CORE_PMW_OFFLINE_H_
#define PMWCM_CORE_PMW_OFFLINE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "convex/cm_query.h"
#include "core/error.h"
#include "data/dataset.h"
#include "data/histogram.h"
#include "dp/privacy.h"
#include "erm/oracle.h"

namespace pmw {
namespace core {

struct PmwOfflineOptions {
  /// Number of (select, oracle, update) rounds.
  int rounds = 10;
  dp::PrivacyParams privacy{1.0, 1e-6};
  /// Family scale S.
  double scale = 2.0;
  /// 0 selects eta = sqrt(log|X| / rounds).
  double override_eta = 0.0;
  /// Early exit: stop when the selected query's (non-noisy, internal)
  /// error drops below this; 0 disables.
  double stop_error = 0.0;
  convex::SolverOptions solver;
};

struct PmwOfflineResult {
  data::Histogram hypothesis;
  /// Per-query answers read off the final hypothesis.
  std::vector<convex::Vec> answers;
  std::vector<int> selected;
  int rounds_used = 0;

  PmwOfflineResult() : hypothesis(data::Histogram::Uniform(1)) {}
};

PmwOfflineResult RunPmwOffline(const data::Dataset& dataset,
                               const std::vector<convex::CmQuery>& queries,
                               erm::Oracle* oracle,
                               const PmwOfflineOptions& options,
                               uint64_t seed);

}  // namespace core
}  // namespace pmw

#endif  // PMWCM_CORE_PMW_OFFLINE_H_
