#include "core/composition_baseline.h"

#include "common/check.h"
#include "dp/composition.h"

namespace pmw {
namespace core {

CompositionBaseline::CompositionBaseline(const data::Dataset* dataset,
                                         erm::Oracle* oracle,
                                         const Options& options, uint64_t seed)
    : dataset_(dataset), oracle_(oracle), options_(options), rng_(seed) {
  PMW_CHECK(dataset != nullptr);
  PMW_CHECK(oracle != nullptr);
  PMW_CHECK_GE(options.max_queries, 1);
  // Pick the better of basic composition (eps/k, delta/k) and the strong-
  // composition split; basic wins for k below ~8 ln(2/delta).
  const int k = static_cast<int>(options.max_queries);
  dp::PrivacyParams strong = dp::PerRoundBudget(options.privacy, k);
  dp::PrivacyParams basic{options.privacy.epsilon / k,
                          options.privacy.delta / k};
  per_query_budget_ = basic.epsilon >= strong.epsilon ? basic : strong;
}

Result<convex::Vec> CompositionBaseline::Answer(const convex::CmQuery& query) {
  if (answered_ >= options_.max_queries) {
    return Status::ResourceExhausted(
        "composition baseline: budget covers only k queries");
  }
  ++answered_;
  erm::OracleContext context;
  context.privacy = per_query_budget_;
  context.target_alpha = options_.target_alpha;
  return oracle_->Solve(query, *dataset_, context, &rng_);
}

}  // namespace core
}  // namespace pmw
