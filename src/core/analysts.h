// Analyst strategies for the accuracy game (Figure 1). The definition
// quantifies over *every* adversary B; these strategies span the spectrum
// the benchmarks need: oblivious random queries from a family, repetition
// (stressing the k >> T sparse-vector regime), and genuinely adaptive
// refinement that builds the next query from the previous answer.

#ifndef PMWCM_CORE_ANALYSTS_H_
#define PMWCM_CORE_ANALYSTS_H_

#include <memory>
#include <vector>

#include "core/accuracy_game.h"
#include "losses/loss_family.h"
#include "losses/transforms.h"

namespace pmw {
namespace core {

/// Oblivious analyst: fresh random query from the family each round.
class FamilyAnalyst : public Analyst {
 public:
  explicit FamilyAnalyst(losses::QueryFamily* family);

  convex::CmQuery NextQuery(Rng* rng) override;
  std::string name() const override;

 private:
  losses::QueryFamily* family_;
};

/// Cycles through a fixed pool of `pool_size` queries drawn once from the
/// family. With k >> pool_size, most queries repeat — the regime where the
/// sparse vector answers almost everything with kBottom for free.
class RepeatingAnalyst : public Analyst {
 public:
  RepeatingAnalyst(losses::QueryFamily* family, int pool_size, Rng* rng);

  convex::CmQuery NextQuery(Rng* rng) override;
  std::string name() const override;

 private:
  std::vector<convex::CmQuery> pool_;
  size_t next_ = 0;
};

/// Adaptive analyst: with probability `fresh_probability` asks a fresh
/// family query; otherwise re-centres a family query's Tikhonov
/// regularizer at the most recent *answer*, making the query sequence a
/// genuine function of the mechanism's transcript (the adversary model of
/// Definition 2.4 and Section 1.3).
class AdaptiveRefinementAnalyst : public Analyst {
 public:
  AdaptiveRefinementAnalyst(losses::QueryFamily* family, double sigma,
                            double fresh_probability);

  convex::CmQuery NextQuery(Rng* rng) override;
  void ObserveAnswer(const convex::CmQuery& query,
                     const convex::Vec& answer) override;
  std::string name() const override;

 private:
  losses::QueryFamily* family_;
  double sigma_;
  double fresh_probability_;
  std::vector<convex::Vec> observed_answers_;
  std::vector<std::unique_ptr<convex::LossFunction>> owned_;
};

}  // namespace core
}  // namespace pmw

#endif  // PMWCM_CORE_ANALYSTS_H_
