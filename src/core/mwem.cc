#include "core/mwem.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "dp/mechanisms.h"

namespace pmw {
namespace core {

MwemResult RunMwem(const data::Dataset& dataset,
                   const std::vector<LinearQuery>& queries,
                   const MwemOptions& options, uint64_t seed) {
  PMW_CHECK(!queries.empty());
  PMW_CHECK_GE(options.rounds, 1);
  dp::ValidatePrivacyParams(options.privacy);
  Rng rng(seed);

  const data::Universe& universe = dataset.universe();
  data::Histogram data_hist = data::Histogram::FromDataset(dataset);
  const double n = static_cast<double>(dataset.n());
  const double log_universe = universe.LogSize();
  const double eta = options.override_eta > 0.0
                         ? options.override_eta
                         : std::sqrt(log_universe / options.rounds);

  // Each round spends eps/rounds, half on selection, half on measurement
  // (the HLM12 split).
  const double eps_round = options.privacy.epsilon / options.rounds;
  const double eps_select = eps_round / 2.0;
  const double eps_measure = eps_round / 2.0;

  MwemResult result;
  result.hypothesis = data::Histogram::Uniform(universe.size());

  std::vector<double> true_answers(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    true_answers[q] = queries[q].Evaluate(data_hist);
  }

  for (int round = 0; round < options.rounds; ++round) {
    // Select the (noisily) worst-answered query; scores are 1/n-sensitive.
    std::vector<double> scores(queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      scores[q] =
          std::abs(true_answers[q] - queries[q].Evaluate(result.hypothesis));
    }
    int chosen =
        dp::ExponentialMechanism(scores, 1.0 / n, eps_select, &rng);
    result.selected.push_back(chosen);

    // Measure it with Laplace noise.
    double noisy = true_answers[chosen] +
                   rng.Laplace((1.0 / n) / eps_measure);
    noisy = Clamp(noisy, 0.0, 1.0);

    // Multiplicative update toward the measurement.
    double hypothesis_answer = queries[chosen].Evaluate(result.hypothesis);
    double sign = (noisy > hypothesis_answer) ? 1.0 : -1.0;
    result.hypothesis = result.hypothesis.MultiplicativeUpdate(
        queries[chosen].values, sign * eta);

    double max_err = 0.0;
    for (size_t q = 0; q < queries.size(); ++q) {
      max_err = std::max(
          max_err,
          std::abs(true_answers[q] - queries[q].Evaluate(result.hypothesis)));
    }
    result.max_error_trace.push_back(max_err);
  }
  return result;
}

}  // namespace core
}  // namespace pmw
