// The mechanism-side interface of the sample accuracy game (Figure 1):
// anything that can answer a stream of adaptively chosen CM queries.

#ifndef PMWCM_CORE_ANSWERER_H_
#define PMWCM_CORE_ANSWERER_H_

#include <string>

#include "common/result.h"
#include "convex/cm_query.h"

namespace pmw {
namespace core {

class QueryAnswerer {
 public:
  virtual ~QueryAnswerer() = default;

  /// Answers the next query of the interaction.
  virtual Result<convex::Vec> Answer(const convex::CmQuery& query) = 0;

  virtual std::string name() const = 0;
};

}  // namespace core
}  // namespace pmw

#endif  // PMWCM_CORE_ANSWERER_H_
