// The composition baseline the paper's introduction argues against:
// answer each of the k CM queries independently with the single-query
// oracle A', splitting the privacy budget across the k calls with strong
// composition. Its accuracy degrades like sqrt(k) (the per-call epsilon is
// eps/sqrt(k) up to logs) whereas PMW degrades like log k — the crossover
// quantified in Section 4.1 and measured in bench_crossover.

#ifndef PMWCM_CORE_COMPOSITION_BASELINE_H_
#define PMWCM_CORE_COMPOSITION_BASELINE_H_

#include <cstdint>

#include "common/random.h"
#include "core/answerer.h"
#include "data/dataset.h"
#include "dp/privacy.h"
#include "erm/oracle.h"

namespace pmw {
namespace core {

class CompositionBaseline : public QueryAnswerer {
 public:
  struct Options {
    dp::PrivacyParams privacy{1.0, 1e-6};
    /// k: the number of calls the budget must cover.
    long long max_queries = 100;
    /// Oracle accuracy hint.
    double target_alpha = 0.05;
  };

  CompositionBaseline(const data::Dataset* dataset, erm::Oracle* oracle,
                      const Options& options, uint64_t seed);

  /// Answers with a fresh A' call; ResourceExhausted past max_queries.
  Result<convex::Vec> Answer(const convex::CmQuery& query) override;

  std::string name() const override {
    return "composition(" + oracle_->name() + ")";
  }

  /// The per-call budget (for reports).
  const dp::PrivacyParams& per_query_budget() const {
    return per_query_budget_;
  }

 private:
  const data::Dataset* dataset_;
  erm::Oracle* oracle_;
  Options options_;
  dp::PrivacyParams per_query_budget_;
  Rng rng_;
  long long answered_ = 0;
};

/// Adapter presenting PmwCm through the QueryAnswerer interface.
class PmwAnswerer;

}  // namespace core
}  // namespace pmw

#endif  // PMWCM_CORE_COMPOSITION_BASELINE_H_
