#include "core/pmw_linear.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace pmw {
namespace core {

PmwLinear::PmwLinear(const data::Dataset* dataset,
                     const PmwLinearOptions& options, uint64_t seed)
    : dataset_(dataset),
      options_(options),
      data_histogram_(data::Histogram::FromDataset(*dataset)),
      hypothesis_(data::Histogram::Uniform(dataset->universe().size())),
      rng_(seed) {
  PMW_CHECK_GT(options.alpha, 0.0);
  dp::ValidatePrivacyParams(options.privacy);
  PMW_CHECK_MSG(options.privacy.delta > 0.0, "PMW requires delta > 0");

  const double log_universe = dataset->universe().LogSize();
  T_ = options.override_updates > 0
           ? options.override_updates
           : static_cast<int>(std::ceil(16.0 * log_universe /
                                        (options.alpha * options.alpha)));
  eta_ = options.override_eta > 0.0 ? options.override_eta
                                    : std::sqrt(log_universe / T_);

  // Budget split mirroring Figure 3: half to the sparse vector, half
  // (strong-composed over T updates) to the Laplace answers.
  dp::SparseVector::Options sv_options;
  sv_options.max_top_answers = T_;
  sv_options.alpha = options.alpha;
  sv_options.sensitivity = 1.0 / static_cast<double>(dataset->n());
  sv_options.privacy = {options.privacy.epsilon / 2.0,
                        options.privacy.delta / 2.0};
  sparse_vector_ =
      std::make_unique<dp::SparseVector>(sv_options, rng_.NextSeed());

  double eps0 = options.privacy.epsilon /
                std::sqrt(8.0 * T_ * std::log(4.0 / options.privacy.delta));
  laplace_scale_ = (1.0 / static_cast<double>(dataset->n())) / eps0;
}

Result<PmwLinearAnswer> PmwLinear::AnswerQuery(const LinearQuery& query) {
  if (halted()) {
    return Status::Halted("pmw-linear: update budget exhausted");
  }
  const double true_answer = query.Evaluate(data_histogram_);
  const double hypothesis_answer = query.Evaluate(hypothesis_);
  // The sparse-vector query is the absolute error of the hypothesis; it is
  // (1/n)-sensitive because only the true answer depends on D.
  Result<dp::SparseVector::Answer> sv_answer =
      sparse_vector_->Process(std::abs(true_answer - hypothesis_answer));
  if (!sv_answer.ok()) return sv_answer.status();

  PmwLinearAnswer answer;
  if (*sv_answer == dp::SparseVector::Answer::kBottom) {
    answer.value = hypothesis_answer;
    answer.was_update = false;
    return answer;
  }

  // Update round: release a Laplace-noised answer and move the hypothesis
  // toward it (the HR10 update).
  double noisy_answer = true_answer + rng_.Laplace(laplace_scale_);
  noisy_answer = Clamp(noisy_answer, 0.0, 1.0);
  double sign = (noisy_answer > hypothesis_answer) ? 1.0 : -1.0;
  hypothesis_ = hypothesis_.MultiplicativeUpdate(query.values, sign * eta_);
  ++update_count_;

  answer.value = noisy_answer;
  answer.was_update = true;
  return answer;
}

}  // namespace core
}  // namespace pmw
