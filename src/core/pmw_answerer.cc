#include "core/pmw_answerer.h"

#include "common/check.h"

namespace pmw {
namespace core {

PmwAnswerer::PmwAnswerer(PmwCm* mechanism) : mechanism_(mechanism) {
  PMW_CHECK(mechanism != nullptr);
}

Result<convex::Vec> PmwAnswerer::Answer(const convex::CmQuery& query) {
  Result<PmwAnswer> answer = mechanism_->AnswerQuery(query);
  if (!answer.ok()) return answer.status();
  return std::move(answer.value().theta);
}

}  // namespace core
}  // namespace pmw
