// Online private multiplicative weights for linear queries — the
// Hardt-Rothblum (FOCS 2010) mechanism the paper extends (Section 1.2's
// sketch). Serves as the Table 1 row 1 baseline and as the reference
// implementation the CM extension is diffed against in tests.

#ifndef PMWCM_CORE_PMW_LINEAR_H_
#define PMWCM_CORE_PMW_LINEAR_H_

#include <cstdint>
#include <memory>

#include "common/random.h"
#include "common/result.h"
#include "core/linear_query.h"
#include "data/dataset.h"
#include "data/histogram.h"
#include "dp/privacy.h"
#include "dp/sparse_vector.h"

namespace pmw {
namespace core {

struct PmwLinearOptions {
  double alpha = 0.1;
  double beta = 0.05;
  dp::PrivacyParams privacy{1.0, 1e-6};
  /// 0 = the HR10 worst-case T = 16 log|X| / alpha^2; benchmarks use
  /// practical values.
  int override_updates = 0;
  double override_eta = 0.0;
};

/// One answer: the released value for the query.
struct PmwLinearAnswer {
  double value = 0.0;
  bool was_update = false;
};

class PmwLinear {
 public:
  PmwLinear(const data::Dataset* dataset, const PmwLinearOptions& options,
            uint64_t seed);

  /// Answers <q, D> within +-alpha (whp, at the theorem's n).
  Result<PmwLinearAnswer> AnswerQuery(const LinearQuery& query);

  const data::Histogram& hypothesis() const { return hypothesis_; }
  int update_count() const { return update_count_; }
  bool halted() const { return sparse_vector_->halted(); }
  int T() const { return T_; }

 private:
  const data::Dataset* dataset_;
  PmwLinearOptions options_;
  data::Histogram data_histogram_;
  data::Histogram hypothesis_;
  std::unique_ptr<dp::SparseVector> sparse_vector_;
  Rng rng_;
  int T_ = 0;
  double eta_ = 0.0;
  double laplace_scale_ = 0.0;
  int update_count_ = 0;
};

}  // namespace core
}  // namespace pmw

#endif  // PMWCM_CORE_PMW_LINEAR_H_
