#include "core/accuracy_game.h"

#include <algorithm>

#include "common/check.h"
#include "common/stats.h"

namespace pmw {
namespace core {

double GameResult::MaxError() const {
  if (errors.empty()) return 0.0;
  return *std::max_element(errors.begin(), errors.end());
}

double GameResult::MeanError() const {
  if (errors.empty()) return 0.0;
  return Mean(errors);
}

double GameResult::AccurateFraction(double alpha) const {
  if (errors.empty()) return 1.0;
  int good = 0;
  for (double e : errors) {
    if (e <= alpha) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(errors.size());
}

GameResult RunAccuracyGame(QueryAnswerer* mechanism, Analyst* analyst, int k,
                           const ErrorOracle& error_oracle,
                           const data::Histogram& data_hist, Rng* rng) {
  PMW_CHECK(mechanism != nullptr);
  PMW_CHECK(analyst != nullptr);
  PMW_CHECK(rng != nullptr);
  PMW_CHECK_GE(k, 1);

  GameResult result;
  result.errors.reserve(k);
  for (int j = 0; j < k; ++j) {
    convex::CmQuery query = analyst->NextQuery(rng);
    Result<convex::Vec> answer = mechanism->Answer(query);
    if (!answer.ok()) {
      result.mechanism_halted = true;
      break;
    }
    result.errors.push_back(
        error_oracle.AnswerError(query, data_hist, *answer));
    analyst->ObserveAnswer(query, *answer);
    ++result.queries_answered;
  }
  return result;
}

}  // namespace core
}  // namespace pmw
