// Error of an answer (Definition 2.2) and of a database (Definition 2.3):
// excess empirical risk of an answer theta_hat, and of the minimizer
// computed from a surrogate database D'. The latter is exactly the
// (3S/n)-sensitive query q_j(D) = err_l(D, D_hat_t) that the paper's
// algorithm feeds to the sparse vector (Figure 3, Section 3.4.2).

#ifndef PMWCM_CORE_ERROR_H_
#define PMWCM_CORE_ERROR_H_

#include <memory>

#include "convex/auto_solver.h"
#include "convex/cm_query.h"
#include "data/histogram.h"
#include "data/universe.h"

namespace pmw {
namespace core {

/// Computes argmins and excess risks for CM queries against histograms.
/// Holds the inner (non-private) solver; one instance per experiment.
class ErrorOracle {
 public:
  explicit ErrorOracle(const data::Universe* universe,
                       convex::SolverOptions solver_options = {});

  const data::Universe& universe() const { return *universe_; }

  /// argmin_theta l_D(theta) over the query's domain.
  convex::Vec Minimize(const convex::CmQuery& query,
                       const data::Histogram& histogram) const;

  /// min_theta l_D(theta).
  double MinimumValue(const convex::CmQuery& query,
                      const data::Histogram& histogram) const;

  /// l_D(theta).
  double Loss(const convex::CmQuery& query, const data::Histogram& histogram,
              const convex::Vec& theta) const;

  /// Definition 2.2: err_l(D, theta_hat) = l_D(theta_hat) - min l_D.
  /// Clamped below at 0 (solver jitter can make it epsilon-negative).
  double AnswerError(const convex::CmQuery& query,
                     const data::Histogram& histogram,
                     const convex::Vec& theta_hat) const;

  /// Support-based variants: identical mathematics over a precomputed
  /// compacted support (see data::HistogramSupport). Callers that evaluate
  /// many queries against one histogram compact it once and use these.
  convex::Vec Minimize(const convex::CmQuery& query,
                       const data::HistogramSupport& support) const;
  double MinimumValue(const convex::CmQuery& query,
                      const data::HistogramSupport& support) const;
  double Loss(const convex::CmQuery& query,
              const data::HistogramSupport& support,
              const convex::Vec& theta) const;
  double AnswerError(const convex::CmQuery& query,
                     const data::HistogramSupport& support,
                     const convex::Vec& theta_hat) const;

  /// Definition 2.3: err_l(D, D') = l_D(argmin l_D') - min l_D.
  double DatabaseError(const convex::CmQuery& query,
                       const data::Histogram& histogram,
                       const data::Histogram& surrogate) const;

 private:
  const data::Universe* universe_;
  convex::AutoSolver solver_;
};

}  // namespace core
}  // namespace pmw

#endif  // PMWCM_CORE_ERROR_H_
