// Native linear (statistical/counting) queries over a universe, and their
// evaluation against histograms. The HR10 baseline (pmw_linear) and MWEM
// (mwem) answer these directly; Table 1 row 1 compares them against the
// CM-query embedding in losses/linear_query_loss.h.

#ifndef PMWCM_CORE_LINEAR_QUERY_H_
#define PMWCM_CORE_LINEAR_QUERY_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "data/histogram.h"
#include "data/universe.h"
#include "losses/linear_query_loss.h"

namespace pmw {
namespace core {

/// A linear query q : X -> [0, 1], stored as its value on every universe
/// row. The answer on histogram D is <q, D>.
struct LinearQuery {
  std::vector<double> values;
  std::string label;

  /// <q, D>.
  double Evaluate(const data::Histogram& histogram) const;
};

/// Tabulates a predicate over the universe.
LinearQuery MakeLinearQuery(const data::Universe& universe,
                            const losses::Predicate& predicate,
                            std::string label);

/// A batch of k random conjunction queries (width <= max_width) over
/// feature signs and, optionally, the label.
std::vector<LinearQuery> RandomConjunctionQueries(
    const data::Universe& universe, int k, int max_width, bool include_label,
    Rng* rng);

}  // namespace core
}  // namespace pmw

#endif  // PMWCM_CORE_LINEAR_QUERY_H_
