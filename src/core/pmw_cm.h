// Online Private Multiplicative Weights for CM queries — the paper's main
// contribution (Figure 3, Theorems 3.8 and 3.9).
//
// The mechanism maintains a public hypothesis histogram D_hat over the data
// universe. For each incoming loss l_j it forms the (3S/n)-sensitive query
//   q_j(D) = err_{l_j}(D, D_hat_t)
// and feeds it to the online sparse vector algorithm. On kBottom it answers
// with the hypothesis's own minimizer (free: no privacy cost). On kTop it
// calls the single-query oracle A' for a private minimizer theta_t, answers
// with it, and performs the paper's key *dual certificate* update: the
// vector
//   u_t(x) = <theta_t - theta_hat_t, grad l_x(theta_hat_t)>
// is a linear query on which D_hat_t errs by at least err - alpha_0
// (Claim 3.5), and a multiplicative-weights step on u_t drives D_hat toward
// D. The regret bound (Lemma 3.4) caps the number of updates at
// T = 64 S^2 log|X| / alpha^2, so the sparse vector never exhausts its
// budget and every one of the k queries is answered within alpha
// (Theorem 3.8).

#ifndef PMWCM_CORE_PMW_CM_H_
#define PMWCM_CORE_PMW_CM_H_

#include <algorithm>
#include <cstdint>
#include <memory>

#include "common/random.h"
#include "common/result.h"
#include "core/error.h"
#include "core/sharded_hypothesis.h"
#include "data/dataset.h"
#include "data/histogram.h"
#include "dp/ledger.h"
#include "dp/privacy.h"
#include "dp/sparse_vector.h"
#include "erm/oracle.h"

namespace pmw {
namespace core {

/// Configuration of the Figure 3 algorithm.
struct PmwOptions {
  /// Target accuracy alpha and failure probability beta.
  double alpha = 0.1;
  double beta = 0.05;
  /// Total privacy budget (eps, delta); delta > 0 required.
  dp::PrivacyParams privacy{1.0, 1e-6};
  /// The family scale parameter S (Section 3.2's scaling condition). For
  /// 1-Lipschitz losses over the unit ball, S = 2.
  double scale = 2.0;
  /// k: the number of queries the analyst may ask (enters the sparse
  /// vector's parameters only through documentation; the accuracy bound's
  /// log k lives in the required n).
  long long max_queries = 1024;
  /// Maximum number of MW updates. 0 selects the paper's worst-case
  /// T = ceil(64 S^2 log|X| / alpha^2); benchmarks use small practical
  /// values (the HLM12 regime), which is sound: T only bounds the number
  /// of updates the mechanism may spend.
  int override_updates = 0;
  /// Learning rate. 0 selects the paper's eta = sqrt(log|X| / T).
  double override_eta = 0.0;
  /// ABLATION ONLY: negate the MW exponent (the wrong direction). The
  /// accuracy analysis (Claims 3.5-3.7) breaks; bench_ablation measures
  /// how badly.
  bool flip_update_sign = false;
  /// Inner solver controls.
  convex::SolverOptions solver;
};

/// The derived parameters of Figure 3.
struct PmwSchedule {
  int T = 0;            // update budget
  double eta = 0.0;     // MW learning rate
  dp::PrivacyParams oracle_budget;  // (eps0, delta0) per A' call
  dp::PrivacyParams sv_budget;      // (eps/2, delta/2) for sparse vector
  double alpha0 = 0.0;  // oracle accuracy target alpha/4
  double beta0 = 0.0;   // oracle failure target beta/(2T)

  /// Computes the schedule exactly as printed in Figure 3.
  static PmwSchedule Compute(const PmwOptions& options, double log_universe);

  /// Theorem 3.8's sufficient dataset size:
  /// max(n', 4096 S^2 sqrt(log|X| log(4/delta)) log(8k/beta)/(eps alpha^2)).
  static double TheoremRequiredN(const PmwOptions& options,
                                 double log_universe, double oracle_n);
};

/// Per-query outcome (the mechanism's released transcript entry).
struct PmwAnswer {
  convex::Vec theta;
  /// True when this query triggered an A' call and a MW update.
  bool was_update = false;
};

/// Wall-clock accounting of the MW-update path (dual-certificate payoff
/// + sharded reweigh/renormalize), the work the domain shards
/// parallelize. Oracle solves are excluded: they are the sequential part
/// the shards cannot touch. Bookkeeping only — never influences answers.
struct MwUpdateTiming {
  long long updates = 0;
  double total_ms = 0.0;
};

/// Wall-clock breakdown of the most recent AnswerPrepared call, reset on
/// entry: the private oracle solve (hard rounds only) and the MW-update
/// path. Bookkeeping only — never influences answers; the serving layer
/// copies it into trace spans.
struct AnswerTiming {
  uint64_t solve_us = 0;
  uint64_t mw_us = 0;
};

/// A compacted copy of the hypothesis histogram tagged with the
/// hypothesis_version() it was taken at. Batch callers snapshot once and
/// prepare many queries against it; the version tag travels into every
/// PreparedQuery so staleness is always detectable.
struct HypothesisSnapshot {
  data::HistogramSupport support;
  int version = 0;
};

/// The deterministic, data-independent-randomness part of answering one
/// query: the hypothesis minimizer theta_hat_t and the error-query value
/// q_j(D) fed to the sparse vector. Computing it touches no mechanism
/// state and draws no randomness, so a serving layer may precompute and
/// reuse it for repeated queries — it stays valid until the hypothesis
/// histogram changes (i.e. while hypothesis_version() is unchanged).
struct PreparedQuery {
  convex::Vec theta_hat;
  double query_value = 0.0;
  /// The snapshot version this plan was computed against. Defaults to -1
  /// (never a real version) so a default-constructed plan is always
  /// treated as stale and recomputed, never trusted.
  int hypothesis_version = -1;
};

/// The interactive mechanism. One instance serves one dataset and up to
/// max_queries adaptively chosen CM queries.
class PmwCm {
 public:
  /// `dataset` and `oracle` must outlive the mechanism. The dataset's
  /// universe provides |X|.
  PmwCm(const data::Dataset* dataset, erm::Oracle* oracle,
        const PmwOptions& options, uint64_t seed);

  /// Answers the next query; Status kHalted when the sparse vector has
  /// exhausted its T updates (Theorem 3.8 guarantees this cannot happen
  /// at the theorem's n; at practical parameters it is observable).
  /// Equivalent to AnswerPrepared(query, Prepare(query)).
  Result<PmwAnswer> AnswerQuery(const convex::CmQuery& query);

  /// One compaction pass over the current hypothesis, tagged with its
  /// version. The serving layer snapshots once per batch instead of once
  /// per query.
  HypothesisSnapshot SnapshotHypothesis() const;

  /// Computes theta_hat_t and the error-query value for `query` against the
  /// given hypothesis snapshot (or a fresh one). Deterministic and const:
  /// answering with the result via AnswerPrepared is indistinguishable from
  /// AnswerQuery. The plan inherits the snapshot's version, so preparing
  /// against a stale snapshot yields a plan AnswerPrepared will recompute
  /// rather than trust.
  ///
  /// Thread safety: Prepare draws no randomness and touches only state
  /// that is immutable after construction (the error oracle, the data
  /// support) plus the caller-supplied snapshot, so any number of threads
  /// may Prepare concurrently against const snapshots — the epoch-read
  /// path of serve::PmwService. The snapshot-less overload reads the live
  /// hypothesis and is NOT safe concurrently with AnswerPrepared; neither
  /// is any concurrent call to AnswerPrepared itself (single writer).
  PreparedQuery Prepare(const convex::CmQuery& query) const;
  PreparedQuery Prepare(const convex::CmQuery& query,
                        const HypothesisSnapshot& snapshot) const;

  /// Answers using a precomputed PreparedQuery. If `prepared` was computed
  /// at an older hypothesis_version() it is ignored and recomputed, so a
  /// stale cache costs time, never correctness. A non-null
  /// `current_snapshot` at the live version serves that recompute without
  /// a fresh compaction pass (the serving layer always has one in hand);
  /// a stale or null one falls back to snapshotting internally.
  Result<PmwAnswer> AnswerPrepared(const convex::CmQuery& query,
                                   const PreparedQuery& prepared,
                                   const HypothesisSnapshot* current_snapshot =
                                       nullptr);

  /// True when the next AnswerQuery call would be rejected (halted sparse
  /// vector or exhausted k-query budget); lets callers skip Prepare work
  /// for queries that cannot be served.
  bool WillReject() const {
    return halted() || queries_answered_ >= options_.max_queries;
  }

  /// Queries left in the k-query budget (0 when exhausted); lets batch
  /// callers cap how many plans are worth preparing.
  long long queries_remaining() const {
    return std::max(options_.max_queries - queries_answered_, 0LL);
  }

  /// Increments exactly when the hypothesis histogram changes (one MW
  /// update per kTop answer); keys PreparedQuery caches.
  int hypothesis_version() const { return update_count_; }

  /// Partitions the hypothesis into `shards` domain shards (rounded down
  /// to a power of two, clamped to the universe size) and installs the
  /// per-shard executor driving the MW-update path's parallel phases
  /// (null keeps them inline). Must be called before any query is
  /// answered — the partition is serving topology fixed at startup.
  /// Sharding NEVER changes answers: at any configuration the update
  /// arithmetic is bit-identical to the default single shard
  /// (core/sharded_hypothesis.h explains why). Returns the actual count.
  int ConfigureSharding(int shards, ShardRunner runner);

  /// As above, additionally selecting the hypothesis storage backend.
  /// kSparse with default options ("exact mode") keeps transcripts
  /// bit-identical to kDense; non-default SparseHypothesisOptions opt
  /// into the documented approx mode (deterministic and replayable, but
  /// answers may differ from dense within the oracle test's bounds).
  int ConfigureSharding(int shards, ShardRunner runner,
                        HypothesisBackend backend,
                        const SparseHypothesisOptions& sparse = {});

  /// Installs a remote executor of the MW update's per-shard phases (the
  /// cluster combiner; see core/sharded_hypothesis.h). Call after
  /// ConfigureSharding and before the first query; requires the dense
  /// backend. Null restores local execution. `delegate` must outlive the
  /// mechanism. Does not change a single bit of any transcript — the
  /// delegate contract IS the in-process arithmetic.
  void SetHypothesisDelegate(HypothesisDelegate* delegate);

  HypothesisBackend hypothesis_backend() const {
    return hypothesis_.backend();
  }
  /// Hypothesis entries currently materialized (== |X| under kDense) —
  /// the sparse backend's memory observable.
  long long materialized_entries() const {
    return hypothesis_.materialized_entries();
  }

  int num_shards() const { return hypothesis_.num_shards(); }
  /// Stable identity of the shard partition; keys (epoch, shard-set)-
  /// aware plan caches.
  uint64_t shard_fingerprint() const { return hypothesis_.fingerprint(); }
  /// The shard ranges, in domain order (what epochs slice snapshots by).
  const std::vector<HypothesisShard>& shard_layout() const {
    return hypothesis_.shards();
  }

  /// Time spent in the MW-update path (what the shards parallelize);
  /// bench_serve_parallel's shard gate reads this.
  const MwUpdateTiming& mw_timing() const { return mw_timing_; }

  /// Solve/MW breakdown of the last AnswerPrepared call (zeros on bottom
  /// answers and rejections).
  const AnswerTiming& last_answer_timing() const {
    return last_answer_timing_;
  }

  /// A dense copy of the public hypothesis histogram (also a synthetic
  /// dataset release; see the paper's Section 4.3 remark).
  data::Histogram hypothesis() const { return hypothesis_.ToHistogram(); }

  const PmwSchedule& schedule() const { return schedule_; }
  int update_count() const { return update_count_; }
  long long queries_answered() const { return queries_answered_; }
  bool halted() const { return sparse_vector_->halted(); }

  /// Audit trail of every differentially private access.
  const dp::PrivacyLedger& ledger() const { return ledger_; }

  /// The error oracle used internally (shared for measurement code).
  const ErrorOracle& error_oracle() const { return error_oracle_; }

 private:
  const data::Dataset* dataset_;
  erm::Oracle* oracle_;
  PmwOptions options_;
  PmwSchedule schedule_;
  ErrorOracle error_oracle_;
  /// Compacted once at construction; the data histogram never changes, so
  /// only its support is kept.
  data::HistogramSupport data_support_;
  ShardedHypothesis hypothesis_;
  std::unique_ptr<dp::SparseVector> sparse_vector_;
  dp::PrivacyLedger ledger_;
  Rng rng_;
  MwUpdateTiming mw_timing_;
  AnswerTiming last_answer_timing_;
  int update_count_ = 0;
  long long queries_answered_ = 0;
};

}  // namespace core
}  // namespace pmw

#endif  // PMWCM_CORE_PMW_CM_H_
