// Adapter: PmwCm as a QueryAnswerer for the accuracy game.

#ifndef PMWCM_CORE_PMW_ANSWERER_H_
#define PMWCM_CORE_PMW_ANSWERER_H_

#include "core/answerer.h"
#include "core/pmw_cm.h"

namespace pmw {
namespace core {

class PmwAnswerer : public QueryAnswerer {
 public:
  explicit PmwAnswerer(PmwCm* mechanism);

  Result<convex::Vec> Answer(const convex::CmQuery& query) override;

  std::string name() const override { return "pmw-cm"; }

  PmwCm* mechanism() { return mechanism_; }

 private:
  PmwCm* mechanism_;
};

}  // namespace core
}  // namespace pmw

#endif  // PMWCM_CORE_PMW_ANSWERER_H_
