// MWEM (Hardt-Ligett-McSherry, NIPS 2012): the offline multiplicative-
// weights + exponential-mechanism release for a *fixed* set of linear
// queries. The paper cites it as the practical face of the PMW framework
// (Section 1, [HLM12]); it is the offline counterpart of pmw_linear and
// the template for pmw_offline's CM extension.

#ifndef PMWCM_CORE_MWEM_H_
#define PMWCM_CORE_MWEM_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/linear_query.h"
#include "data/dataset.h"
#include "data/histogram.h"
#include "dp/privacy.h"

namespace pmw {
namespace core {

struct MwemOptions {
  /// Number of (select, measure, update) rounds.
  int rounds = 10;
  dp::PrivacyParams privacy{1.0, 0.0};  // pure DP by default
  /// MW learning rate; 0 selects eta = sqrt(log|X| / rounds).
  double override_eta = 0.0;
};

struct MwemResult {
  data::Histogram hypothesis;
  /// Index of the query selected in each round.
  std::vector<int> selected;
  /// Max |<q, D> - <q, hypothesis>| over the query set, per round (a
  /// convergence trace; computed for reporting, not released).
  std::vector<double> max_error_trace;

  MwemResult() : hypothesis(data::Histogram::Uniform(1)) {}
};

/// Runs MWEM and returns the final hypothesis histogram.
MwemResult RunMwem(const data::Dataset& dataset,
                   const std::vector<LinearQuery>& queries,
                   const MwemOptions& options, uint64_t seed);

}  // namespace core
}  // namespace pmw

#endif  // PMWCM_CORE_MWEM_H_
