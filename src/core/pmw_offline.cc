#include "core/pmw_offline.h"

#include <cmath>

#include "common/check.h"
#include "dp/composition.h"
#include "dp/mechanisms.h"

namespace pmw {
namespace core {

PmwOfflineResult RunPmwOffline(const data::Dataset& dataset,
                               const std::vector<convex::CmQuery>& queries,
                               erm::Oracle* oracle,
                               const PmwOfflineOptions& options,
                               uint64_t seed) {
  PMW_CHECK(!queries.empty());
  PMW_CHECK(oracle != nullptr);
  PMW_CHECK_GE(options.rounds, 1);
  dp::ValidatePrivacyParams(options.privacy);
  PMW_CHECK_MSG(options.privacy.delta > 0.0, "requires delta > 0");
  Rng rng(seed);

  const data::Universe& universe = dataset.universe();
  ErrorOracle error_oracle(&universe, options.solver);
  data::Histogram data_hist = data::Histogram::FromDataset(dataset);
  // Compact once: the data histogram is fixed, and the hypothesis only
  // changes between rounds — every per-query evaluation below runs on a
  // support instead of rescanning the dense histograms.
  const data::HistogramSupport data_support = data_hist.CompactSupport();
  const double n = static_cast<double>(dataset.n());
  const double eta = options.override_eta > 0.0
                         ? options.override_eta
                         : std::sqrt(universe.LogSize() / options.rounds);

  // Budget: half (strong-composed over rounds) for selection, half for the
  // oracle calls — the CM analogue of the HLM12 split.
  dp::PrivacyParams half{options.privacy.epsilon / 2.0,
                         options.privacy.delta / 2.0};
  dp::PrivacyParams select_budget = dp::PerRoundBudget(half, options.rounds);
  dp::PrivacyParams oracle_budget = dp::PerRoundBudget(half, options.rounds);

  PmwOfflineResult result;
  result.hypothesis = data::Histogram::Uniform(universe.size());

  for (int round = 0; round < options.rounds; ++round) {
    // Score every query by the hypothesis's error (Definition 2.3);
    // (3S/n)-sensitive in the dataset (Section 3.4.2).
    std::vector<double> scores(queries.size());
    std::vector<convex::Vec> hypothesis_argmins(queries.size());
    const data::HistogramSupport hypothesis_support =
        result.hypothesis.CompactSupport();
    for (size_t q = 0; q < queries.size(); ++q) {
      hypothesis_argmins[q] =
          error_oracle.Minimize(queries[q], hypothesis_support);
      scores[q] = error_oracle.AnswerError(queries[q], data_support,
                                           hypothesis_argmins[q]);
    }
    int chosen = dp::ExponentialMechanism(
        scores, 3.0 * options.scale / n, select_budget.epsilon, &rng);
    result.selected.push_back(chosen);
    result.rounds_used = round + 1;

    if (options.stop_error > 0.0 && scores[chosen] < options.stop_error) {
      break;
    }

    erm::OracleContext context;
    context.privacy = oracle_budget;
    Result<convex::Vec> theta_t =
        oracle->Solve(queries[chosen], dataset, context, &rng);
    PMW_CHECK_MSG(theta_t.ok(), theta_t.status().ToString());

    // Dual-certificate update (Figure 3's key step).
    const convex::Vec& theta_hat = hypothesis_argmins[chosen];
    convex::Vec direction = convex::Sub(*theta_t, theta_hat);
    std::vector<double> payoff(universe.size());
    for (int x = 0; x < universe.size(); ++x) {
      convex::Vec grad =
          queries[chosen].loss->Gradient(theta_hat, universe.row(x));
      payoff[x] = convex::Dot(direction, grad);
    }
    result.hypothesis = result.hypothesis.MultiplicativeUpdate(
        payoff, -eta / options.scale);
  }

  result.answers.reserve(queries.size());
  const data::HistogramSupport final_support =
      result.hypothesis.CompactSupport();
  for (const convex::CmQuery& query : queries) {
    result.answers.push_back(error_oracle.Minimize(query, final_support));
  }
  return result;
}

}  // namespace core
}  // namespace pmw
