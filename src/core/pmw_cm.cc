#include "core/pmw_cm.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/logging.h"
#include "common/timer.h"

namespace pmw {
namespace core {

PmwSchedule PmwSchedule::Compute(const PmwOptions& options,
                                 double log_universe) {
  PMW_CHECK_GT(options.alpha, 0.0);
  PMW_CHECK_GT(options.beta, 0.0);
  PMW_CHECK_GT(options.scale, 0.0);
  PMW_CHECK_GT(log_universe, 0.0);
  dp::ValidatePrivacyParams(options.privacy);
  PMW_CHECK_MSG(options.privacy.delta > 0.0,
                "Figure 3 requires delta > 0 (strong composition)");

  PmwSchedule s;
  if (options.override_updates > 0) {
    s.T = options.override_updates;
  } else {
    // T = 64 S^2 log|X| / alpha^2 (Figure 3).
    s.T = static_cast<int>(std::ceil(64.0 * options.scale * options.scale *
                                     log_universe /
                                     (options.alpha * options.alpha)));
  }
  PMW_CHECK_GE(s.T, 1);
  s.eta = options.override_eta > 0.0 ? options.override_eta
                                     : std::sqrt(log_universe / s.T);
  const double eps = options.privacy.epsilon;
  const double delta = options.privacy.delta;
  // eps0 = eps / sqrt(8 T log(4/delta)), delta0 = delta/(4T) (Figure 3);
  // the T-fold strong composition of the oracle calls then stays within
  // (eps/2 + o(eps), delta/2), and the sparse vector gets (eps/2, delta/2).
  s.oracle_budget.epsilon =
      eps / std::sqrt(8.0 * s.T * std::log(4.0 / delta));
  s.oracle_budget.delta = delta / (4.0 * s.T);
  s.sv_budget = {eps / 2.0, delta / 2.0};
  s.alpha0 = options.alpha / 4.0;
  s.beta0 = options.beta / (2.0 * s.T);
  return s;
}

double PmwSchedule::TheoremRequiredN(const PmwOptions& options,
                                     double log_universe, double oracle_n) {
  const double s = options.scale;
  const double eps = options.privacy.epsilon;
  const double delta = options.privacy.delta;
  const double alpha = options.alpha;
  const double beta = options.beta;
  const double k = static_cast<double>(options.max_queries);
  double pmw_n = 4096.0 * s * s *
                 std::sqrt(log_universe * std::log(4.0 / delta)) *
                 std::log(8.0 * k / beta) / (eps * alpha * alpha);
  return std::max(oracle_n, pmw_n);
}

PmwCm::PmwCm(const data::Dataset* dataset, erm::Oracle* oracle,
             const PmwOptions& options, uint64_t seed)
    : dataset_(dataset),
      oracle_(oracle),
      options_(options),
      schedule_(PmwSchedule::Compute(options, dataset->universe().LogSize())),
      error_oracle_(&dataset->universe(), options.solver),
      data_support_(data::Histogram::FromDataset(*dataset).CompactSupport()),
      hypothesis_(dataset->universe().size()),
      rng_(seed) {
  PMW_CHECK(oracle != nullptr);
  dp::SparseVector::Options sv_options;
  sv_options.max_top_answers = schedule_.T;
  sv_options.alpha = options_.alpha;
  // The error queries are (3S/n)-sensitive (Section 3.4.2).
  sv_options.sensitivity =
      3.0 * options_.scale / static_cast<double>(dataset->n());
  sv_options.privacy = schedule_.sv_budget;
  sparse_vector_ =
      std::make_unique<dp::SparseVector>(sv_options, rng_.NextSeed());
  ledger_.Record("sparse-vector", schedule_.sv_budget);
}

Result<PmwAnswer> PmwCm::AnswerQuery(const convex::CmQuery& query) {
  if (WillReject()) {
    // Rejected before the plan would be consulted; skip the solves.
    return AnswerPrepared(query, PreparedQuery{});
  }
  return AnswerPrepared(query, Prepare(query));
}

int PmwCm::ConfigureSharding(int shards, ShardRunner runner) {
  return ConfigureSharding(shards, std::move(runner),
                           HypothesisBackend::kDense);
}

int PmwCm::ConfigureSharding(int shards, ShardRunner runner,
                             HypothesisBackend backend,
                             const SparseHypothesisOptions& sparse) {
  PMW_CHECK_MSG(queries_answered_ == 0 && update_count_ == 0,
                "sharding must be configured before the first query");
  hypothesis_.SetBackend(backend, sparse);
  const int actual = hypothesis_.Repartition(shards);
  hypothesis_.set_runner(std::move(runner));
  return actual;
}

void PmwCm::SetHypothesisDelegate(HypothesisDelegate* delegate) {
  PMW_CHECK_MSG(queries_answered_ == 0 && update_count_ == 0,
                "the delegate must be installed before the first query");
  hypothesis_.SetDelegate(delegate);
}

HypothesisSnapshot PmwCm::SnapshotHypothesis() const {
  return {hypothesis_.CompactSupport(), update_count_};
}

PreparedQuery PmwCm::Prepare(const convex::CmQuery& query) const {
  return Prepare(query, SnapshotHypothesis());
}

PreparedQuery PmwCm::Prepare(const convex::CmQuery& query,
                             const HypothesisSnapshot& snapshot) const {
  PMW_CHECK(query.loss != nullptr);
  PMW_CHECK(query.domain != nullptr);

  PreparedQuery prepared;
  // theta_hat_t = argmin over the public hypothesis (no privacy cost).
  prepared.theta_hat = error_oracle_.Minimize(query, snapshot.support);
  // q_j(D) = err_l(D, D_hat_t) = l_D(theta_hat) - min l_D.
  prepared.query_value =
      error_oracle_.AnswerError(query, data_support_, prepared.theta_hat);
  prepared.hypothesis_version = snapshot.version;
  return prepared;
}

Result<PmwAnswer> PmwCm::AnswerPrepared(
    const convex::CmQuery& query, const PreparedQuery& prepared,
    const HypothesisSnapshot* current_snapshot) {
  PMW_CHECK(query.loss != nullptr);
  PMW_CHECK(query.domain != nullptr);
  last_answer_timing_ = AnswerTiming{};
  if (halted()) {
    return Status::Halted("pmw-cm: sparse vector exhausted its T updates");
  }
  if (queries_answered_ >= options_.max_queries) {
    return Status::ResourceExhausted("pmw-cm: k queries already answered");
  }
  ++queries_answered_;

  convex::Vec theta_hat;
  double query_value;
  if (prepared.hypothesis_version == update_count_) {
    theta_hat = prepared.theta_hat;
    query_value = prepared.query_value;
  } else {
    // Stale plan (prepared before an MW update): recompute. Prepare is
    // deterministic, so the recompute path is transcript-identical to a
    // fresh plan; a caller-held snapshot at the live version just skips
    // the compaction pass.
    PreparedQuery fresh;
    if (current_snapshot != nullptr &&
        current_snapshot->version == update_count_) {
      fresh = Prepare(query, *current_snapshot);
    } else {
      fresh = Prepare(query);
    }
    theta_hat = std::move(fresh.theta_hat);
    query_value = fresh.query_value;
  }

  // The only access to D flows through the sparse vector's noisy threshold
  // test on the precomputed query value.
  Result<dp::SparseVector::Answer> sv_answer =
      sparse_vector_->Process(query_value);
  if (!sv_answer.ok()) return sv_answer.status();

  if (*sv_answer == dp::SparseVector::Answer::kBottom) {
    PmwAnswer answer;
    answer.theta = std::move(theta_hat);
    answer.was_update = false;
    return answer;
  }

  // kTop: the hypothesis is (noisily) alpha/2-inaccurate. Obtain a private
  // approximate minimizer from A'.
  erm::OracleContext context;
  context.privacy = schedule_.oracle_budget;
  context.target_alpha = schedule_.alpha0;
  context.target_beta = schedule_.beta0;
  WallTimer solve_timer;
  Result<convex::Vec> oracle_answer =
      oracle_->Solve(query, *dataset_, context, &rng_);
  last_answer_timing_.solve_us =
      static_cast<uint64_t>(solve_timer.ElapsedSeconds() * 1e6);
  if (!oracle_answer.ok()) return oracle_answer.status();
  convex::Vec theta_t = std::move(oracle_answer).value();
  ledger_.Record("oracle:" + oracle_->name(), schedule_.oracle_budget);

  // Dual certificate (the paper's key new step):
  //   u_t(x) = <theta_t - theta_hat_t, grad l_x(theta_hat_t)>.
  // The loop over x is elementwise, so each domain shard evaluates its
  // own [lo, hi) slice — the parallel half of the MW-update path.
  WallTimer mw_timer;
  const data::Universe& universe = dataset_->universe();
  convex::Vec direction = convex::Sub(theta_t, theta_hat);
  std::vector<double> payoff(universe.size());
  hypothesis_.RunShards(
      [this, &query, &theta_hat, &direction, &universe, &payoff](int s) {
        const HypothesisShard& shard = hypothesis_.shard(s);
        for (int x = shard.lo; x < shard.hi; ++x) {
          convex::Vec grad =
              query.loss->Gradient(theta_hat, universe.row(x));
          payoff[static_cast<size_t>(x)] = convex::Dot(direction, grad);
        }
      });

  // MW step D_{t+1}(x) ~ exp(-eta u_t(x)/S) D_t(x): mass moves away from
  // records where the hypothesis over-weights the certificate (payoffs are
  // normalized to [-1, 1] by S so eta = sqrt(log|X|/T) is the standard MW
  // tuning; see the regret accounting in DESIGN.md). Sharded: K per-shard
  // reweighs plus the O(K) normalizer combine, bit-identical at any K.
  double exponent = -schedule_.eta / options_.scale;
  if (options_.flip_update_sign) exponent = -exponent;  // ablation only
  const Status mw_status = hypothesis_.MultiplicativeUpdate(payoff, exponent);
  if (!mw_status.ok()) {
    // Only reachable with a cluster delegate whose own bounded recovery
    // already failed: the hypothesis is unchanged (update_count() still
    // gates plan caches correctly) but the oracle access above IS on the
    // ledger — the caller sees a typed unavailability error, and a
    // replayed run that never lost the worker proceeds identically up to
    // this query.
    return mw_status;
  }
  ++update_count_;
  ++mw_timing_.updates;
  const double mw_ms = mw_timer.ElapsedMillis();
  mw_timing_.total_ms += mw_ms;
  last_answer_timing_.mw_us = static_cast<uint64_t>(mw_ms * 1e3);
  PMW_LOG(kDebug) << "pmw-cm update " << update_count_ << "/" << schedule_.T
                  << " on " << query.label;

  PmwAnswer answer;
  answer.theta = std::move(theta_t);
  answer.was_update = true;
  return answer;
}

}  // namespace core
}  // namespace pmw
