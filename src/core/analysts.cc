#include "core/analysts.h"

#include "common/check.h"

namespace pmw {
namespace core {

FamilyAnalyst::FamilyAnalyst(losses::QueryFamily* family) : family_(family) {
  PMW_CHECK(family != nullptr);
}

convex::CmQuery FamilyAnalyst::NextQuery(Rng* rng) {
  return family_->Next(rng);
}

std::string FamilyAnalyst::name() const {
  return "family(" + family_->name() + ")";
}

RepeatingAnalyst::RepeatingAnalyst(losses::QueryFamily* family, int pool_size,
                                   Rng* rng) {
  PMW_CHECK(family != nullptr);
  PMW_CHECK_GE(pool_size, 1);
  pool_ = family->Generate(pool_size, rng);
}

convex::CmQuery RepeatingAnalyst::NextQuery(Rng* /*rng*/) {
  convex::CmQuery query = pool_[next_ % pool_.size()];
  ++next_;
  return query;
}

std::string RepeatingAnalyst::name() const {
  return "repeating(pool=" + std::to_string(pool_.size()) + ")";
}

AdaptiveRefinementAnalyst::AdaptiveRefinementAnalyst(
    losses::QueryFamily* family, double sigma, double fresh_probability)
    : family_(family), sigma_(sigma), fresh_probability_(fresh_probability) {
  PMW_CHECK(family != nullptr);
  PMW_CHECK_GT(sigma, 0.0);
  PMW_CHECK_GE(fresh_probability, 0.0);
  PMW_CHECK_LE(fresh_probability, 1.0);
}

convex::CmQuery AdaptiveRefinementAnalyst::NextQuery(Rng* rng) {
  convex::CmQuery base = family_->Next(rng);
  if (observed_answers_.empty() || rng->Bernoulli(fresh_probability_)) {
    return base;
  }
  // Re-centre at the latest answer: the query now depends on the
  // transcript. Scale the centre to half the ball to keep the family's
  // Lipschitz bound.
  convex::Vec center = observed_answers_.back();
  if (static_cast<int>(center.size()) != base.loss->dim()) {
    return base;  // family changed dimension (defensive)
  }
  convex::ScaleInPlace(&center, 0.5);
  auto refined = std::make_unique<losses::TikhonovLoss>(
      base.loss, sigma_, std::move(center), /*domain_radius=*/1.0);
  convex::CmQuery query;
  query.loss = refined.get();
  query.domain = base.domain;
  query.label = "adaptive:" + refined->name();
  owned_.push_back(std::move(refined));
  return query;
}

void AdaptiveRefinementAnalyst::ObserveAnswer(const convex::CmQuery& /*query*/,
                                              const convex::Vec& answer) {
  observed_answers_.push_back(answer);
}

std::string AdaptiveRefinementAnalyst::name() const {
  return "adaptive-refinement(" + family_->name() + ")";
}

}  // namespace core
}  // namespace pmw
