#include "core/error.h"

#include <algorithm>

#include "common/check.h"
#include "convex/empirical_loss.h"

namespace pmw {
namespace core {

ErrorOracle::ErrorOracle(const data::Universe* universe,
                         convex::SolverOptions solver_options)
    : universe_(universe), solver_(solver_options) {
  PMW_CHECK(universe != nullptr);
}

convex::Vec ErrorOracle::Minimize(const convex::CmQuery& query,
                                  const data::Histogram& histogram) const {
  PMW_CHECK_EQ(histogram.size(), universe_->size());
  convex::HistogramObjective objective(query.loss, universe_, &histogram);
  return solver_.Minimize(objective, *query.domain).theta;
}

double ErrorOracle::MinimumValue(const convex::CmQuery& query,
                                 const data::Histogram& histogram) const {
  PMW_CHECK_EQ(histogram.size(), universe_->size());
  convex::HistogramObjective objective(query.loss, universe_, &histogram);
  return solver_.Minimize(objective, *query.domain).value;
}

double ErrorOracle::Loss(const convex::CmQuery& query,
                         const data::Histogram& histogram,
                         const convex::Vec& theta) const {
  PMW_CHECK_EQ(histogram.size(), universe_->size());
  convex::HistogramObjective objective(query.loss, universe_, &histogram);
  return objective.Value(theta);
}

double ErrorOracle::AnswerError(const convex::CmQuery& query,
                                const data::Histogram& histogram,
                                const convex::Vec& theta_hat) const {
  double excess = Loss(query, histogram, theta_hat) -
                  MinimumValue(query, histogram);
  return std::max(excess, 0.0);
}

convex::Vec ErrorOracle::Minimize(const convex::CmQuery& query,
                                  const data::HistogramSupport& support) const {
  convex::SupportObjective objective(query.loss, universe_, &support);
  return solver_.Minimize(objective, *query.domain).theta;
}

double ErrorOracle::MinimumValue(const convex::CmQuery& query,
                                 const data::HistogramSupport& support) const {
  convex::SupportObjective objective(query.loss, universe_, &support);
  return solver_.Minimize(objective, *query.domain).value;
}

double ErrorOracle::Loss(const convex::CmQuery& query,
                         const data::HistogramSupport& support,
                         const convex::Vec& theta) const {
  convex::SupportObjective objective(query.loss, universe_, &support);
  return objective.Value(theta);
}

double ErrorOracle::AnswerError(const convex::CmQuery& query,
                                const data::HistogramSupport& support,
                                const convex::Vec& theta_hat) const {
  double excess =
      Loss(query, support, theta_hat) - MinimumValue(query, support);
  return std::max(excess, 0.0);
}

double ErrorOracle::DatabaseError(const convex::CmQuery& query,
                                  const data::Histogram& histogram,
                                  const data::Histogram& surrogate) const {
  convex::Vec theta_surrogate = Minimize(query, surrogate);
  return AnswerError(query, histogram, theta_surrogate);
}

}  // namespace core
}  // namespace pmw
