// The sample accuracy game Acc_{n,k,L}[A, B] (paper Figure 1, Definition
// 2.4): an analyst B adaptively issues k losses from a family, the
// mechanism A answers each, and the game records the excess empirical risk
// (Definition 2.2) of every answer against the true dataset. The harness
// behind every accuracy benchmark.

#ifndef PMWCM_CORE_ACCURACY_GAME_H_
#define PMWCM_CORE_ACCURACY_GAME_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "convex/cm_query.h"
#include "core/answerer.h"
#include "core/error.h"
#include "data/histogram.h"

namespace pmw {
namespace core {

/// The analyst side of the game. NextQuery may depend on everything
/// observed so far (adaptivity); ObserveAnswer delivers the transcript.
class Analyst {
 public:
  virtual ~Analyst() = default;
  virtual convex::CmQuery NextQuery(Rng* rng) = 0;
  virtual void ObserveAnswer(const convex::CmQuery& /*query*/,
                             const convex::Vec& /*answer*/) {}
  virtual std::string name() const = 0;
};

/// Transcript and per-query errors of one run of the game.
struct GameResult {
  std::vector<double> errors;  // err_{l_j}(D, theta_hat_j), Definition 2.2
  int queries_answered = 0;
  bool mechanism_halted = false;

  double MaxError() const;
  double MeanError() const;
  /// Fraction of queries with error <= alpha (Definition 2.4's event).
  double AccurateFraction(double alpha) const;
};

/// Runs the game for up to k queries. Errors are measured against
/// `data_hist` (the true dataset's histogram) by `error_oracle`. Stops
/// early when the mechanism halts (the paper's early-termination event).
GameResult RunAccuracyGame(QueryAnswerer* mechanism, Analyst* analyst, int k,
                           const ErrorOracle& error_oracle,
                           const data::Histogram& data_hist, Rng* rng);

}  // namespace core
}  // namespace pmw

#endif  // PMWCM_CORE_ACCURACY_GAME_H_
