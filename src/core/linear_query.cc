#include "core/linear_query.h"

#include <algorithm>

#include "common/check.h"

namespace pmw {
namespace core {

double LinearQuery::Evaluate(const data::Histogram& histogram) const {
  PMW_CHECK_EQ(values.size(), static_cast<size_t>(histogram.size()));
  double acc = 0.0;
  for (size_t i = 0; i < values.size(); ++i) acc += values[i] * histogram[i];
  return acc;
}

LinearQuery MakeLinearQuery(const data::Universe& universe,
                            const losses::Predicate& predicate,
                            std::string label) {
  LinearQuery query;
  query.label = std::move(label);
  query.values.resize(universe.size());
  for (int i = 0; i < universe.size(); ++i) {
    double v = predicate(universe.row(i));
    PMW_CHECK_GE(v, 0.0);
    PMW_CHECK_LE(v, 1.0);
    query.values[i] = v;
  }
  return query;
}

std::vector<LinearQuery> RandomConjunctionQueries(
    const data::Universe& universe, int k, int max_width, bool include_label,
    Rng* rng) {
  PMW_CHECK_GE(k, 1);
  PMW_CHECK_GE(max_width, 1);
  PMW_CHECK(rng != nullptr);
  const int d = universe.feature_dim();
  PMW_CHECK_LE(max_width, d);
  std::vector<LinearQuery> queries;
  queries.reserve(k);
  for (int j = 0; j < k; ++j) {
    int width = 1 + rng->UniformInt(max_width);
    std::vector<int> coords(d);
    for (int i = 0; i < d; ++i) coords[i] = i;
    rng->Shuffle(&coords);
    coords.resize(width);
    std::sort(coords.begin(), coords.end());
    std::vector<int> signs(width);
    for (int i = 0; i < width; ++i) signs[i] = rng->Bernoulli(0.5) ? 1 : -1;
    int label_constraint = 0;
    if (include_label && rng->Bernoulli(0.5)) {
      label_constraint = rng->Bernoulli(0.5) ? 1 : -1;
    }
    std::string label = "conj#" + std::to_string(j);
    queries.push_back(MakeLinearQuery(
        universe,
        losses::ConjunctionPredicate(coords, signs, label_constraint),
        std::move(label)));
  }
  return queries;
}

}  // namespace core
}  // namespace pmw
