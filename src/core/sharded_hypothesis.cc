#include "core/sharded_hypothesis.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/math_util.h"

namespace pmw {
namespace core {
namespace {

/// Recursive halving with PairwiseSum's split rule: after `levels`
/// splits every emitted range is a depth-`levels` node of the fixed
/// reduction tree over [lo, hi).
void SplitRange(int lo, int hi, int levels,
                std::vector<HypothesisShard>* out) {
  if (levels == 0) {
    HypothesisShard shard;
    shard.lo = lo;
    shard.hi = hi;
    out->push_back(shard);
    return;
  }
  const int mid = lo + (hi - lo) / 2;
  SplitRange(lo, mid, levels - 1, out);
  SplitRange(mid, hi, levels - 1, out);
}

}  // namespace

ShardedHypothesis::ShardedHypothesis(int size)
    : p_(static_cast<size_t>(size), 1.0 / size),
      scratch_(static_cast<size_t>(size)) {
  PMW_CHECK_GE(size, 1);
  Repartition(1);
}

int ShardedHypothesis::Repartition(int shards) {
  // Clamp below as documented (0 is a plausible "disable sharding"
  // knob value from the public api surface, not a programming error).
  if (shards < 1) shards = 1;
  // Largest power of two <= min(shards, size): every shard must be a
  // reduction-tree node (power-of-two count) and non-empty (<= size).
  int levels = 0;
  while ((2 << levels) <= shards && (2 << levels) <= size()) ++levels;
  shards_.clear();
  SplitRange(0, size(), levels, &shards_);
  // FNV-1a over the partition: shard-set identity for plan caches.
  uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(shards_.size()));
  for (const HypothesisShard& shard : shards_) {
    mix(static_cast<uint64_t>(shard.lo));
    mix(static_cast<uint64_t>(shard.hi));
  }
  fingerprint_ = hash;
  return num_shards();
}

void ShardedHypothesis::RunShards(const std::function<void(int)>& fn) const {
  if (runner_ != nullptr && num_shards() > 1) {
    runner_(num_shards(), fn);
    return;
  }
  for (int s = 0; s < num_shards(); ++s) fn(s);
}

data::HistogramSupport ShardedHypothesis::CompactSupport() const {
  return CompactSupport(0, size());
}

data::HistogramSupport ShardedHypothesis::CompactSupport(int lo,
                                                         int hi) const {
  PMW_CHECK_GE(lo, 0);
  PMW_CHECK_LE(lo, hi);
  PMW_CHECK_LE(hi, size());
  size_t support_size = 0;
  for (int i = lo; i < hi; ++i) {
    if (p_[i] > 0.0) ++support_size;
  }
  data::HistogramSupport support;
  support.reserve(support_size);
  for (int i = lo; i < hi; ++i) {
    if (p_[i] > 0.0) support.emplace_back(i, p_[i]);
  }
  return support;
}

data::Histogram ShardedHypothesis::ToHistogram() const {
  return data::Histogram::FromWeights(p_);
}

double ShardedHypothesis::CombineShardSums(int lo, int hi) const {
  if (hi - lo == 1) return shards_[static_cast<size_t>(lo)].local_sum;
  const int mid = lo + (hi - lo) / 2;
  return CombineShardSums(lo, mid) + CombineShardSums(mid, hi);
}

void ShardedHypothesis::MultiplicativeUpdate(
    const std::vector<double>& payoff, double eta) {
  PMW_CHECK_EQ(payoff.size(), p_.size());

  // Phase 1 (per shard): log-weights and the shard-local max.
  RunShards([this, &payoff, eta](int s) {
    HypothesisShard& shard = shards_[static_cast<size_t>(s)];
    double local_max = -std::numeric_limits<double>::infinity();
    for (int i = shard.lo; i < shard.hi; ++i) {
      scratch_[static_cast<size_t>(i)] =
          SafeLog(p_[static_cast<size_t>(i)]) +
          eta * payoff[static_cast<size_t>(i)];
      local_max = std::max(local_max, scratch_[static_cast<size_t>(i)]);
    }
    shard.local_max = local_max;
  });
  // Max fold: associative, so the grouping by shards is exact.
  double global_max = -std::numeric_limits<double>::infinity();
  for (const HypothesisShard& shard : shards_) {
    global_max = std::max(global_max, shard.local_max);
  }

  // Phase 2 (per shard): stabilized weights and the shard's subtree sum.
  RunShards([this, global_max](int s) {
    HypothesisShard& shard = shards_[static_cast<size_t>(s)];
    for (int i = shard.lo; i < shard.hi; ++i) {
      scratch_[static_cast<size_t>(i)] =
          std::exp(scratch_[static_cast<size_t>(i)] - global_max);
    }
    shard.local_sum =
        PairwiseSum(scratch_.data(), static_cast<size_t>(shard.lo),
                    static_cast<size_t>(shard.hi));
  });
  // Normalizer combine: O(K), evaluates the top of the fixed tree.
  const double total = CombineShardSums(0, num_shards());
  PMW_CHECK_GT(total, 0.0);

  // Phase 3 (per shard): normalize in place.
  RunShards([this, total](int s) {
    const HypothesisShard& shard = shards_[static_cast<size_t>(s)];
    for (int i = shard.lo; i < shard.hi; ++i) {
      p_[static_cast<size_t>(i)] = scratch_[static_cast<size_t>(i)] / total;
    }
  });
}

}  // namespace core
}  // namespace pmw
