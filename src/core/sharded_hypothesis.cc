#include "core/sharded_hypothesis.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <limits>
#include <random>
#include <unordered_map>
#include <utility>

#include "common/check.h"
#include "common/math_util.h"
#include "common/simd.h"

namespace pmw {
namespace core {
namespace {

/// Recursive halving with PairwiseSum's split rule: after `levels`
/// splits every emitted range is a depth-`levels` node of the fixed
/// reduction tree over [lo, hi).
void SplitRange(int lo, int hi, int levels,
                std::vector<HypothesisShard>* out) {
  if (levels == 0) {
    HypothesisShard shard;
    shard.lo = lo;
    shard.hi = hi;
    out->push_back(shard);
    return;
  }
  const int mid = lo + (hi - lo) / 2;
  SplitRange(lo, mid, levels - 1, out);
  SplitRange(mid, hi, levels - 1, out);
}

/// PairwiseSum over n copies of the same value w, without materializing
/// them: the fixed tree's shape depends only on the range length (left
/// child floor(n/2), right child n - floor(n/2)), so the subtree value
/// over any all-w range of length n is S(n) with
///   S(1) = w,  S(2) = w + w,  S(n) = S(floor(n/2)) + S(n - floor(n/2))
/// — bit-identical to the dense fold by induction on the tree. Each
/// level contributes at most two distinct lengths, so the memo keeps the
/// recursion O(log n).
double ReplicatedSum(int n, double w, std::unordered_map<int, double>* memo) {
  if (n == 0) return 0.0;
  if (n == 1) return w;
  if (n == 2) return w + w;
  const auto it = memo->find(n);
  if (it != memo->end()) return it->second;
  const int half = n / 2;
  const double sum =
      ReplicatedSum(half, w, memo) + ReplicatedSum(n - half, w, memo);
  memo->emplace(n, sum);
  return sum;
}

/// FNV-1a over the (seed, update index, shard index) triple: the
/// sampled-normalizer seed schedule. A pure function of its inputs, so
/// replays with the same options regenerate identical draw sequences.
uint64_t SampleSeed(uint64_t seed, uint64_t update, uint64_t shard) {
  uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  mix(seed);
  mix(update);
  mix(shard);
  return hash;
}

}  // namespace

std::vector<HypothesisShard> PartitionDomain(int size, int shards) {
  PMW_CHECK_GE(size, 1);
  if (shards < 1) shards = 1;
  // Largest power of two <= min(shards, size): every shard must be a
  // reduction-tree node (power-of-two count) and non-empty (<= size).
  int levels = 0;
  while ((2 << levels) <= shards && (2 << levels) <= size) ++levels;
  std::vector<HypothesisShard> out;
  SplitRange(0, size, levels, &out);
  return out;
}

ShardedHypothesis::ShardedHypothesis(int size)
    : size_(size),
      p_(static_cast<size_t>(size), 1.0 / size),
      scratch_(static_cast<size_t>(size)) {
  PMW_CHECK_GE(size, 1);
  Repartition(1);
}

void ShardedHypothesis::SetBackend(HypothesisBackend backend,
                                   const SparseHypothesisOptions& options) {
  PMW_CHECK_MSG(update_count_ == 0,
                "the backend must be selected before the first update");
  backend_ = backend;
  sparse_options_ = options;
  if (backend_ == HypothesisBackend::kSparse) {
    PMW_CHECK_GE(sparse_options_.payoff_threshold, 0.0);
    if (sparse_options_.sampled_normalizer) {
      PMW_CHECK_GE(sparse_options_.normalizer_samples, 1);
    }
    // Release the dense arrays: the pristine hypothesis is uniform, so
    // the sparse representation is just the residual 1/size per shard.
    p_.clear();
    p_.shrink_to_fit();
    scratch_.clear();
    scratch_.shrink_to_fit();
    RebuildSparseShards({}, {}, 1.0 / size_);
  } else {
    sparse_.clear();
    sparse_.shrink_to_fit();
    p_.assign(static_cast<size_t>(size_), 1.0 / size_);
    scratch_.assign(static_cast<size_t>(size_), 0.0);
  }
}

int ShardedHypothesis::Repartition(int shards) {
  // The partition is fixed before a delegate takes ownership of the
  // state: repartitioning afterwards would strand worker slices.
  PMW_CHECK_MSG(delegate_ == nullptr,
                "Repartition after SetDelegate is not supported");
  // Preserve sparse content across the boundary change: flatten to one
  // global sorted view (shards are in domain order, so concatenation is
  // sorted) and re-bucket after the split. Shards whose residual
  // diverged from the common one — only possible after updates with a
  // stale partition, which ConfigureSharding forbids — are materialized
  // entry by entry so the re-bucketing stays well defined.
  std::vector<int> flat_touched;
  std::vector<double> flat_value;
  double flat_residual = 0.0;
  if (backend_ == HypothesisBackend::kSparse && !sparse_.empty()) {
    bool residual_set = false;
    for (int s = 0; s < num_shards(); ++s) {
      const SparseShardState& ss = sparse_[static_cast<size_t>(s)];
      if (ss.touched_count() < shards_[static_cast<size_t>(s)].size() &&
          !residual_set) {
        flat_residual = ss.residual;
        residual_set = true;
      }
    }
    for (int s = 0; s < num_shards(); ++s) {
      const SparseShardState& ss = sparse_[static_cast<size_t>(s)];
      const HypothesisShard& shard = shards_[static_cast<size_t>(s)];
      const bool same_residual =
          ss.touched_count() == shard.size() ||
          std::memcmp(&ss.residual, &flat_residual, sizeof(double)) == 0;
      if (same_residual) {
        flat_touched.insert(flat_touched.end(), ss.touched.begin(),
                            ss.touched.end());
        flat_value.insert(flat_value.end(), ss.value.begin(), ss.value.end());
      } else {
        size_t ptr = 0;
        for (int i = shard.lo; i < shard.hi; ++i) {
          if (ptr < ss.touched.size() && ss.touched[ptr] == i) {
            flat_touched.push_back(i);
            flat_value.push_back(ss.value[ptr]);
            ++ptr;
          } else {
            flat_touched.push_back(i);
            flat_value.push_back(ss.residual);
          }
        }
      }
    }
  } else if (backend_ == HypothesisBackend::kSparse) {
    flat_residual = 1.0 / size_;
  }

  shards_ = PartitionDomain(size(), shards);
  // FNV-1a over the partition: shard-set identity for plan caches.
  uint64_t hash = 1469598103934665603ull;
  const auto mix = [&hash](uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(shards_.size()));
  for (const HypothesisShard& shard : shards_) {
    mix(static_cast<uint64_t>(shard.lo));
    mix(static_cast<uint64_t>(shard.hi));
  }
  fingerprint_ = hash;

  if (backend_ == HypothesisBackend::kSparse) {
    RebuildSparseShards(flat_touched, flat_value, flat_residual);
  }
  return num_shards();
}

void ShardedHypothesis::RebuildSparseShards(const std::vector<int>& touched,
                                            const std::vector<double>& value,
                                            double residual) {
  sparse_.assign(shards_.size(), SparseShardState{});
  size_t ptr = 0;
  for (int s = 0; s < num_shards(); ++s) {
    const HypothesisShard& shard = shards_[static_cast<size_t>(s)];
    SparseShardState& ss = sparse_[static_cast<size_t>(s)];
    ss.residual = residual;
    while (ptr < touched.size() && touched[ptr] < shard.hi) {
      ss.touched.push_back(touched[ptr]);
      ss.value.push_back(value[ptr]);
      ++ptr;
    }
    if (ss.touched_count() == shard.size()) ss.residual = 0.0;
  }
}

void ShardedHypothesis::SetDelegate(HypothesisDelegate* delegate) {
  PMW_CHECK_MSG(update_count_ == 0,
                "the delegate must be installed before the first update");
  PMW_CHECK_MSG(backend_ == HypothesisBackend::kDense,
                "delegated execution requires the dense backend "
                "(cluster v1 ships probability slices)");
  delegate_ = delegate;
  if (delegate_ != nullptr) {
    // State now lives with the delegate (worker slices); keeping the
    // local arrays would be a second, silently-diverging copy.
    p_.clear();
    p_.shrink_to_fit();
    scratch_.clear();
    scratch_.shrink_to_fit();
  } else {
    p_.assign(static_cast<size_t>(size_), 1.0 / size_);
    scratch_.assign(static_cast<size_t>(size_), 0.0);
  }
}

int ShardedHypothesis::ShardOf(int i) const {
  // Shards are in domain order; find the first with hi > i.
  const auto it = std::upper_bound(
      shards_.begin(), shards_.end(), i,
      [](int lhs, const HypothesisShard& rhs) { return lhs < rhs.hi; });
  return static_cast<int>(it - shards_.begin());
}

double ShardedHypothesis::operator[](int i) const {
  if (delegate_ != nullptr) {
    Result<data::HistogramSupport> slice = delegate_->Snapshot(i, i + 1);
    PMW_CHECK_MSG(slice.ok(), "delegate snapshot failed: "
                                  << slice.status().ToString());
    return slice.value().empty() ? 0.0 : slice.value().front().second;
  }
  if (backend_ == HypothesisBackend::kDense) {
    return p_[static_cast<size_t>(i)];
  }
  const SparseShardState& ss = sparse_[static_cast<size_t>(ShardOf(i))];
  const auto it = std::lower_bound(ss.touched.begin(), ss.touched.end(), i);
  if (it != ss.touched.end() && *it == i) {
    return ss.value[static_cast<size_t>(it - ss.touched.begin())];
  }
  return ss.residual;
}

const std::vector<double>& ShardedHypothesis::probabilities() const {
  PMW_CHECK_MSG(backend_ == HypothesisBackend::kDense &&
                    delegate_ == nullptr,
                "probabilities() is local-dense-only; use operator[], "
                "CompactSupport, or ToHistogram");
  return p_;
}

long long ShardedHypothesis::materialized_entries() const {
  // Delegated state is materialized in the workers, not here.
  if (delegate_ != nullptr) return 0;
  if (backend_ == HypothesisBackend::kDense) return size_;
  long long total = 0;
  for (const SparseShardState& ss : sparse_) total += ss.touched_count();
  return total;
}

void ShardedHypothesis::RunShards(const std::function<void(int)>& fn) const {
  if (runner_ != nullptr && num_shards() > 1) {
    runner_(num_shards(), fn);
    return;
  }
  for (int s = 0; s < num_shards(); ++s) fn(s);
}

data::HistogramSupport ShardedHypothesis::CompactSupport() const {
  return CompactSupport(0, size());
}

data::HistogramSupport ShardedHypothesis::CompactSupport(int lo,
                                                         int hi) const {
  PMW_CHECK_GE(lo, 0);
  PMW_CHECK_LE(lo, hi);
  PMW_CHECK_LE(hi, size());
  data::HistogramSupport support;
  if (delegate_ != nullptr) {
    Result<data::HistogramSupport> slice = delegate_->Snapshot(lo, hi);
    PMW_CHECK_MSG(slice.ok(), "delegate snapshot failed: "
                                  << slice.status().ToString());
    return std::move(slice).value();
  }
  if (backend_ == HypothesisBackend::kDense) {
    size_t support_size = 0;
    for (int i = lo; i < hi; ++i) {
      if (p_[static_cast<size_t>(i)] > 0.0) ++support_size;
    }
    support.reserve(support_size);
    for (int i = lo; i < hi; ++i) {
      if (p_[static_cast<size_t>(i)] > 0.0) {
        support.emplace_back(i, p_[static_cast<size_t>(i)]);
      }
    }
    return support;
  }
  // Sparse: merge-walk each overlapping shard, emitting touched values
  // and residual-filled gaps in index order — the same (index, value)
  // sequence the dense walk produces.
  support.reserve(static_cast<size_t>(hi - lo));
  for (int s = (lo < hi) ? ShardOf(lo) : num_shards(); s < num_shards();
       ++s) {
    const HypothesisShard& shard = shards_[static_cast<size_t>(s)];
    if (shard.lo >= hi) break;
    const SparseShardState& ss = sparse_[static_cast<size_t>(s)];
    const int begin = std::max(lo, shard.lo);
    const int end = std::min(hi, shard.hi);
    size_t ptr = static_cast<size_t>(
        std::lower_bound(ss.touched.begin(), ss.touched.end(), begin) -
        ss.touched.begin());
    for (int i = begin; i < end; ++i) {
      double v;
      if (ptr < ss.touched.size() && ss.touched[ptr] == i) {
        v = ss.value[ptr];
        ++ptr;
      } else {
        v = ss.residual;
      }
      if (v > 0.0) support.emplace_back(i, v);
    }
  }
  return support;
}

data::Histogram ShardedHypothesis::ToHistogram() const {
  if (delegate_ != nullptr) {
    std::vector<double> dense(static_cast<size_t>(size_), 0.0);
    for (const auto& entry : CompactSupport()) {
      dense[static_cast<size_t>(entry.first)] = entry.second;
    }
    return data::Histogram::FromWeights(dense);
  }
  if (backend_ == HypothesisBackend::kDense) {
    return data::Histogram::FromWeights(p_);
  }
  std::vector<double> dense(static_cast<size_t>(size_), 0.0);
  for (int s = 0; s < num_shards(); ++s) {
    const HypothesisShard& shard = shards_[static_cast<size_t>(s)];
    const SparseShardState& ss = sparse_[static_cast<size_t>(s)];
    for (int i = shard.lo; i < shard.hi; ++i) {
      dense[static_cast<size_t>(i)] = ss.residual;
    }
    for (size_t j = 0; j < ss.touched.size(); ++j) {
      dense[static_cast<size_t>(ss.touched[j])] = ss.value[j];
    }
  }
  return data::Histogram::FromWeights(dense);
}

double ShardedHypothesis::CombineShardSums(int lo, int hi) const {
  if (hi - lo == 1) return shards_[static_cast<size_t>(lo)].local_sum;
  const int mid = lo + (hi - lo) / 2;
  return CombineShardSums(lo, mid) + CombineShardSums(mid, hi);
}

Status ShardedHypothesis::MultiplicativeUpdate(
    const std::vector<double>& payoff, double eta) {
  PMW_CHECK_EQ(payoff.size(), static_cast<size_t>(size_));
  if (delegate_ != nullptr) {
    const Status status = DelegateMultiplicativeUpdate(payoff, eta);
    if (!status.ok()) return status;
  } else if (backend_ == HypothesisBackend::kDense) {
    DenseMultiplicativeUpdate(payoff, eta);
  } else {
    SparseMultiplicativeUpdate(payoff, eta);
  }
  ++update_count_;
  return Status::Ok();
}

Status ShardedHypothesis::DelegateMultiplicativeUpdate(
    const std::vector<double>& payoff, double eta) {
  // Same three phases as DenseMultiplicativeUpdate, with the per-shard
  // bodies executed by the delegate and BOTH combines kept here, in the
  // same fixed order — that is what carries bit-identity across
  // processes.
  std::vector<double> local_max;
  Status status = delegate_->Reweigh(payoff, eta, &local_max);
  if (!status.ok()) return status;
  PMW_CHECK_EQ(local_max.size(), shards_.size());
  double global_max = -std::numeric_limits<double>::infinity();
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].local_max = local_max[s];
    global_max = std::max(global_max, local_max[s]);
  }

  std::vector<double> local_sum;
  status = delegate_->PartialSums(global_max, &local_sum);
  if (!status.ok()) return status;
  PMW_CHECK_EQ(local_sum.size(), shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    shards_[s].local_sum = local_sum[s];
  }
  const double total = CombineShardSums(0, num_shards());
  PMW_CHECK_GT(total, 0.0);

  return delegate_->Normalize(total);
}

void ShardedHypothesis::DenseMultiplicativeUpdate(
    const std::vector<double>& payoff, double eta) {
  // Phase 1 (per shard): log-weights and the shard-local max. Split into
  // a scalar log pass (libm stays per-element) and a vectorizable
  // axpy+max pass: per element the same two IEEE ops in the same order
  // as the fused loop (t = SafeLog(p); t + eta * payoff), so the split
  // changes no bits; the kernel's max-fold reorder is downstream-exact
  // (common/simd.h).
  RunShards([this, &payoff, eta](int s) {
    HypothesisShard& shard = shards_[static_cast<size_t>(s)];
    const size_t lo = static_cast<size_t>(shard.lo);
    const size_t n = static_cast<size_t>(shard.hi - shard.lo);
    for (size_t i = lo; i < lo + n; ++i) {
      scratch_[i] = SafeLog(p_[i]);
    }
    double local_max = -std::numeric_limits<double>::infinity();
    simd::AxpyMax(scratch_.data() + lo, payoff.data() + lo, eta, n,
                  &local_max);
    shard.local_max = local_max;
  });
  // Max fold: associative, so the grouping by shards is exact.
  double global_max = -std::numeric_limits<double>::infinity();
  for (const HypothesisShard& shard : shards_) {
    global_max = std::max(global_max, shard.local_max);
  }

  // Phase 2 (per shard): stabilized weights and the shard's subtree sum.
  // The stabilizing subtract vectorizes (elementwise, exact); std::exp
  // stays scalar per element; PairwiseSum's 4/8-leaf nodes vectorize
  // inside the fixed tree (common/simd.h), so the association — and the
  // transcript — is unchanged.
  RunShards([this, global_max](int s) {
    HypothesisShard& shard = shards_[static_cast<size_t>(s)];
    const size_t lo = static_cast<size_t>(shard.lo);
    const size_t n = static_cast<size_t>(shard.hi - shard.lo);
    simd::SubScalar(scratch_.data() + lo, global_max, n);
    for (size_t i = lo; i < lo + n; ++i) {
      scratch_[i] = std::exp(scratch_[i]);
    }
    shard.local_sum = PairwiseSum(scratch_.data(), lo, lo + n);
  });
  // Normalizer combine: O(K), evaluates the top of the fixed tree.
  const double total = CombineShardSums(0, num_shards());
  PMW_CHECK_GT(total, 0.0);

  // Phase 3 (per shard): normalize in place (elementwise divide, exact).
  RunShards([this, total](int s) {
    const HypothesisShard& shard = shards_[static_cast<size_t>(s)];
    const size_t lo = static_cast<size_t>(shard.lo);
    const size_t n = static_cast<size_t>(shard.hi - shard.lo);
    simd::DivScalarTo(p_.data() + lo, scratch_.data() + lo, total, n);
  });
}

void ShardedHypothesis::SparseMultiplicativeUpdate(
    const std::vector<double>& payoff, double eta) {
  const double threshold = sparse_options_.payoff_threshold;

  // Phase 1 (per shard): the new touched set and its log-weights, plus
  // the shard-local max. An entry joins the touched set when it was
  // already touched (its probability diverged from the residual — the
  // normalizer will move it again) or its payoff exceeds the threshold;
  // every other entry shares the single untouched log-weight
  // SafeLog(residual) + eta * 0.0, which equals the dense phase-1 value
  // bit-for-bit (x + eta * 0.0 == x in IEEE for the x SafeLog returns).
  RunShards([this, &payoff, eta, threshold](int s) {
    HypothesisShard& shard = shards_[static_cast<size_t>(s)];
    SparseShardState& ss = sparse_[static_cast<size_t>(s)];
    ss.next_touched.clear();
    ss.logw.clear();
    double local_max = -std::numeric_limits<double>::infinity();
    size_t ptr = 0;
    int untouched = 0;
    for (int i = shard.lo; i < shard.hi; ++i) {
      const bool was_touched =
          ptr < ss.touched.size() && ss.touched[ptr] == i;
      const double pay = payoff[static_cast<size_t>(i)];
      if (!was_touched && std::abs(pay) <= threshold) {
        ++untouched;
        continue;
      }
      const double base = was_touched ? ss.value[ptr] : ss.residual;
      if (was_touched) ++ptr;
      const double lw = SafeLog(base) + eta * pay;
      ss.next_touched.push_back(i);
      ss.logw.push_back(lw);
      local_max = std::max(local_max, lw);
    }
    ss.untouched_count = untouched;
    ss.untouched_logw = SafeLog(ss.residual) + eta * 0.0;
    if (untouched > 0) local_max = std::max(local_max, ss.untouched_logw);
    shard.local_max = local_max;
  });
  double global_max = -std::numeric_limits<double>::infinity();
  for (const HypothesisShard& shard : shards_) {
    global_max = std::max(global_max, shard.local_max);
  }

  // Phase 2 (per shard): stabilized weights and the shard's subtree sum
  // — exact fixed-tree fold, or the sampled estimator in approx mode.
  RunShards([this, global_max](int s) {
    HypothesisShard& shard = shards_[static_cast<size_t>(s)];
    SparseShardState& ss = sparse_[static_cast<size_t>(s)];
    // Same split as the dense phase 2: vector subtract (elementwise,
    // exact), scalar exp per element.
    ss.weight = ss.logw;
    simd::SubScalar(ss.weight.data(), global_max, ss.weight.size());
    for (size_t j = 0; j < ss.weight.size(); ++j) {
      ss.weight[j] = std::exp(ss.weight[j]);
    }
    ss.untouched_weight = std::exp(ss.untouched_logw - global_max);

    if (sparse_options_.sampled_normalizer) {
      // Z_hat = (n / m) * sum of m uniform draws' weights. Deterministic:
      // the generator is a pure function of (seed, update, shard).
      const int n = shard.size();
      const int m = std::min(sparse_options_.normalizer_samples, n);
      std::mt19937_64 gen(SampleSeed(sparse_options_.seed, update_count_,
                                     static_cast<uint64_t>(s)));
      std::vector<double> samples(static_cast<size_t>(m));
      for (int j = 0; j < m; ++j) {
        const int idx =
            shard.lo + static_cast<int>(gen() % static_cast<uint64_t>(n));
        const auto it = std::lower_bound(ss.next_touched.begin(),
                                         ss.next_touched.end(), idx);
        samples[static_cast<size_t>(j)] =
            (it != ss.next_touched.end() && *it == idx)
                ? ss.weight[static_cast<size_t>(it - ss.next_touched.begin())]
                : ss.untouched_weight;
      }
      shard.local_sum = PairwiseSum(samples.data(), 0, samples.size()) *
                        (static_cast<double>(n) / m);
      return;
    }

    // Exact: evaluate the shard's subtree of the fixed reduction tree.
    // Touched leaves are looked up by position in the sorted set;
    // all-untouched subtrees collapse to the memoized replicated sum;
    // fully-touched subtrees are contiguous in `weight`, so PairwiseSum
    // over that slice IS the subtree (same split rule, same leaves).
    // O(touched * log n + log^2 n) per shard.
    std::unordered_map<int, double> memo;
    const std::function<double(int, int, size_t, size_t)> tree_sum =
        [&](int lo, int hi, size_t t0, size_t t1) -> double {
      const int n = hi - lo;
      if (t0 == t1) return ReplicatedSum(n, ss.untouched_weight, &memo);
      if (static_cast<size_t>(n) == t1 - t0) {
        return PairwiseSum(ss.weight.data(), t0, t1);
      }
      const int mid = lo + n / 2;
      const size_t tm = static_cast<size_t>(
          std::lower_bound(ss.next_touched.begin() +
                               static_cast<std::ptrdiff_t>(t0),
                           ss.next_touched.begin() +
                               static_cast<std::ptrdiff_t>(t1),
                           mid) -
          ss.next_touched.begin());
      return tree_sum(lo, mid, t0, tm) + tree_sum(mid, hi, tm, t1);
    };
    shard.local_sum =
        tree_sum(shard.lo, shard.hi, 0, ss.next_touched.size());
  });
  const double total = CombineShardSums(0, num_shards());
  PMW_CHECK_GT(total, 0.0);

  // Phase 3 (per shard): normalize into the new touched set + residual.
  RunShards([this, total](int s) {
    SparseShardState& ss = sparse_[static_cast<size_t>(s)];
    ss.touched.swap(ss.next_touched);
    ss.value.resize(ss.weight.size());
    simd::DivScalarTo(ss.value.data(), ss.weight.data(), total,
                      ss.weight.size());
    ss.residual =
        ss.untouched_count > 0 ? ss.untouched_weight / total : 0.0;
  });
}

}  // namespace core
}  // namespace pmw
